//! Async ingestion front door: turn independent per-point arrivals into
//! batched [`SessionEngine::observe_batch`] ticks under a latency SLO.
//!
//! The paper's workload is *online* — each GPS point of each ongoing trip
//! must be labelled as it arrives — but [`crate::session::Sharded`] is
//! driven tick-synchronously by one caller that already holds a whole
//! tick's events. A fleet does not arrive in ticks: thousands of producer
//! threads (one per gateway connection, per Kafka partition, per vehicle
//! pool) each hold *one* point at a time. [`IngestFrontDoor`] is the
//! missing subsystem between the two shapes:
//!
//! * **one bounded ingress queue per shard** — sessions are hashed to a
//!   shard at [`IngestHandle::open`]; every later event of that session
//!   lands in the same FIFO queue, so per-session order is preserved and a
//!   slow shard never stalls the others;
//! * **persistent worker threads** — each shard is owned by one worker
//!   spawned once at construction (no `std::thread::scope` re-spawn per
//!   tick, so thread start-up cost leaves the hot path entirely); the
//!   worker also owns its batch/label scratch buffers, reused across
//!   flushes — the per-shard tick scratch of `Sharded`, promoted to
//!   worker-owned allocations;
//! * **latency-SLO micro-batching** — a worker accumulates events and
//!   flushes them into its shard as one `observe_batch` tick when either
//!   [`FlushPolicy::max_batch`] events are pending or the *oldest* pending
//!   event has waited [`FlushPolicy::max_delay`] (measured from `submit`,
//!   so queue wait counts against the SLO);
//! * **explicit backpressure** — [`IngestHandle::submit`] never blocks: a
//!   full ingress queue is reported as [`SubmitError::QueueFull`] and the
//!   producer decides (drop, retry, shed). Labels flow back through a
//!   bounded per-session outbox ([`Subscription`]); a consumer that stops
//!   draining eventually stalls only its own shard's flush;
//! * **graceful shutdown** — [`IngestFrontDoor::shutdown`] drains every
//!   event whose `submit` returned `Ok` (a quiescence barrier covers even
//!   submits racing the shutdown call), flushes it, and hands the shard
//!   engines back together with aggregate [`IngestStats`] (including an
//!   HDR-style submit→label [`LatencyHistogram`]);
//! * **control commands at flush boundaries** — [`IngestHandle::control`]
//!   broadcasts an engine mutation (e.g. a model hot-swap, see
//!   `rl4oasd::SwapModel`) through the same FIFO ingress queues; each
//!   worker first flushes its pending micro-batch, then applies the
//!   command, so a control never splits a micro-batch and everything
//!   submitted before the broadcast is processed under the pre-command
//!   engine state. The handle is typed by its engine (`IngestHandle<E>`),
//!   so commands for the wrong engine type are a compile error, not a
//!   runtime surprise;
//! * **fault tolerance** (opt-in via [`IngestFrontDoor::build_supervised`])
//!   — each shard worker runs under a supervisor: a panic in batch
//!   processing quarantines only the sessions implicated in the aborted
//!   micro-batch (their subscriptions terminate with an explicit
//!   [`SessionFault`], never a hang), salvages every other session on the
//!   shard through the hibernate freeze/thaw path, rebuilds the engine
//!   from the construction factory and resumes — unaffected sessions keep
//!   byte-identical labels. Events the engine rejects as unprocessable
//!   ([`SessionEngine::admit`]) are *poison*: they quarantine their
//!   session before ever reaching the engine, so one malformed trip can
//!   never crash a shard. Producers get policy tools on the handle —
//!   bounded [`RetryPolicy`] backoff, [`IngestHandle::submit_with_deadline`],
//!   and degraded-mode admission control that sheds [`Priority::Low`]
//!   opens while a shard is restarting or persistently full. Accounting
//!   stays exact across faults:
//!   `flushed + shed + quarantined == submitted`.
//!
//! Because a session's events reach its shard in submit order and
//! [`SessionEngine`] guarantees interleaving never changes labels, the
//! per-session label sequence is **byte-identical** to driving
//! `observe_batch` synchronously — for any [`FlushPolicy`] and any shard
//! count (property-tested in `tests/ingest.rs`).

use crate::session::{SessionEngine, SessionId, SupervisedEngine};
use crate::types::SdPair;
use obs::{names, Counter, Gauge, Histo, Obs, OpsEvent, Stage, StageHandle};
use rnet::SegmentId;
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When a worker flushes its pending micro-batch into its shard.
///
/// A flush happens as soon as **either** bound is hit:
///
/// * `max_batch` — the batch reached this many events (throughput bound:
///   larger batches amortise the per-tick cost and widen the batched nn
///   kernels);
/// * `max_delay` — the *oldest* pending event has waited this long since
///   its `submit` (latency bound: no accepted event waits in the worker
///   longer than the SLO, even on a quiet shard). The clock starts at
///   `submit`, so ingress-queue wait counts against the budget.
///
/// Two special points in the space: [`FlushPolicy::immediate`] flushes
/// every event alone (minimum latency, no batching win), and a huge
/// `max_batch` with a long `max_delay` approximates the tick-synchronous
/// driver. Shutdown and `close` always flush whatever is pending,
/// regardless of policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Flush when this many events are pending (clamped to at least 1).
    pub max_batch: usize,
    /// Flush when the oldest pending event has waited this long.
    pub max_delay: Duration,
}

impl FlushPolicy {
    /// Flush every event by itself: minimum latency, no batching.
    pub fn immediate() -> Self {
        FlushPolicy {
            max_batch: 1,
            max_delay: Duration::ZERO,
        }
    }

    /// A policy with the given bounds.
    pub fn new(max_batch: usize, max_delay: Duration) -> Self {
        FlushPolicy {
            max_batch,
            max_delay,
        }
    }
}

impl Default for FlushPolicy {
    /// 64-event batches under a 1 ms SLO — batched-kernel wins at
    /// sub-millisecond added latency.
    fn default() -> Self {
        FlushPolicy {
            max_batch: 64,
            max_delay: Duration::from_millis(1),
        }
    }
}

/// Construction-time knobs of an [`IngestFrontDoor`].
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Micro-batching bounds (see [`FlushPolicy`]).
    pub flush: FlushPolicy,
    /// Capacity of each per-shard ingress queue; a full queue turns
    /// [`IngestHandle::submit`] into [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Capacity of each per-session label outbox; an undrained outbox
    /// eventually blocks its shard's flush (backpressure toward the
    /// consumer), so size it for the consumer's polling cadence.
    pub outbox_capacity: usize,
    /// Telemetry handle. [`obs::Obs::disabled`] (the default) keeps the
    /// door's hot path free of any telemetry work; an enabled handle gets
    /// per-shard ingress counters, per-stage latency histograms
    /// (enqueue-wait / batch-compute / label-delivery) and the
    /// submit→label histogram registered under the `oasd_ingest_*` /
    /// `oasd_stage_nanos` names.
    pub obs: Obs,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            flush: FlushPolicy::default(),
            queue_capacity: 1024,
            outbox_capacity: 256,
            obs: Obs::disabled(),
        }
    }
}

/// Why an [`IngestHandle`] call was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The session's shard queue is full — backpressure. The event was
    /// **not** accepted; retry, shed or slow down.
    QueueFull,
    /// The front door is shutting down (or already shut down); no further
    /// events are accepted.
    ShutDown,
    /// [`IngestHandle::submit_with_deadline`] ran out of budget while the
    /// shard queue stayed full. The event was **not** accepted.
    DeadlineExceeded,
    /// Degraded-mode admission control shed this [`Priority::Low`] open:
    /// the target shard is restarting after a fault or its queue has been
    /// full past the watermark. Nothing was enqueued.
    Degraded,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "shard ingress queue is full"),
            SubmitError::ShutDown => write!(f, "ingest front door is shut down"),
            SubmitError::DeadlineExceeded => {
                write!(f, "submit deadline elapsed while the shard queue was full")
            }
            SubmitError::Degraded => {
                write!(
                    f,
                    "low-priority open shed by degraded-mode admission control"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a session was quarantined (or a close rejected): the terminal
/// status a faulted session's [`CloseTicket`] resolves with and its
/// [`Subscription::fault`] reports. Every fault is explicit — a faulted
/// session's consumer always observes a disconnect plus one of these,
/// never a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionFault {
    /// The session submitted an event its engine rejected as
    /// unprocessable ([`SessionEngine::admit`]). Events labelled before
    /// the poison event were delivered normally; the poison event and
    /// everything after it were quarantined.
    PoisonEvent,
    /// The session's events were in the micro-batch a shard worker
    /// panicked on; its engine state could not be trusted afterwards.
    WorkerCrash,
    /// The session survived the panic but its state could not be
    /// exported from the wrecked engine or re-imported into the rebuilt
    /// one.
    Unsalvageable,
    /// The close targeted a session its shard does not know — a double
    /// close, or a session that was never opened.
    UnknownSession,
}

impl std::fmt::Display for SessionFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionFault::PoisonEvent => write!(f, "session quarantined: poison event"),
            SessionFault::WorkerCrash => {
                write!(f, "session quarantined: implicated in a shard-worker panic")
            }
            SessionFault::Unsalvageable => {
                write!(
                    f,
                    "session quarantined: state not salvageable across restart"
                )
            }
            SessionFault::UnknownSession => write!(f, "close of an unknown or closed session"),
        }
    }
}

impl std::error::Error for SessionFault {}

/// Marker every *injected* panic message carries (fault-injection
/// harnesses panic with it) so [`silence_injected_panic_output`] can
/// suppress exactly that noise and nothing else.
pub const FAULT_INJECTION_MARKER: &str = "oasd-fault-injection";

/// Installs (once per process) a chained panic hook that swallows the
/// default "thread panicked" stderr report for panics whose message
/// contains [`FAULT_INJECTION_MARKER`]. Genuine panics still print
/// through the previously installed hook. Supervised workers *recover*
/// from injected panics by design, so their unwind reports are pure
/// noise in chaos tests and benches.
pub fn silence_injected_panic_output() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.contains(FAULT_INJECTION_MARKER) {
                previous(info);
            }
        }));
    });
}

/// SplitMix64 — the same tiny generator the scenario traces use; here it
/// de-correlates retry jitter across producers deterministically.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bounded exponential backoff with seeded, deterministic jitter for
/// `QueueFull` retries — the replacement for hot-spin retry loops.
///
/// The delay for attempt `k` doubles from [`base`](RetryPolicy::base) up
/// to the [`max_backoff`](RetryPolicy::max_backoff) cap, then a jitter
/// drawn from SplitMix64 over `(jitter_seed, salt, k)` scatters it into
/// `[delay/2, delay]` so colliding producers de-synchronise the same way
/// on every run — chaos runs stay replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt; `u32::MAX` means retry until the
    /// call stops reporting `QueueFull` (use for lossless producers).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Backoff cap; doubling stops here.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// 10 retries, 20 µs doubling to a 2 ms cap.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 10,
            base: Duration::from_micros(20),
            max_backoff: Duration::from_millis(2),
            jitter_seed: 0x0A5D_FA17,
        }
    }
}

impl RetryPolicy {
    /// Retries forever (bounded *backoff*, unbounded *attempts*) — for
    /// producers that must not lose events, replacing unbounded hot
    /// spins with capped sleeps.
    pub fn unbounded(jitter_seed: u64) -> Self {
        RetryPolicy {
            max_retries: u32::MAX,
            jitter_seed,
            ..RetryPolicy::default()
        }
    }

    /// The jittered delay before retry `attempt` (0-based). Deterministic
    /// in `(jitter_seed, salt, attempt)`.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let doubled = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff)
            .max(self.base);
        let nanos = doubled.as_nanos().min(u128::from(u64::MAX)) as u64;
        let half = nanos / 2;
        let mix = splitmix64(
            self.jitter_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt)
                .wrapping_add(u64::from(attempt)),
        );
        Duration::from_nanos(half + mix % (half + 1))
    }

    /// Runs `op`, retrying `QueueFull` under this policy (sleeping the
    /// jittered backoff between attempts; `salt` de-correlates concurrent
    /// callers). Any other outcome — success, `ShutDown`, … — returns
    /// immediately; exhausted retries return the last `QueueFull`.
    pub fn run<T>(
        &self,
        salt: u64,
        mut op: impl FnMut() -> Result<T, SubmitError>,
    ) -> Result<T, SubmitError> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Err(SubmitError::QueueFull) if attempt < self.max_retries => {
                    let delay = self.backoff(attempt, salt);
                    if delay.is_zero() {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(delay);
                    }
                    attempt = attempt.saturating_add(1);
                }
                other => return other,
            }
        }
    }
}

/// Admission class of an open under degraded-mode admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Admitted whenever the queue has room, degraded or not. Plain
    /// [`IngestHandle::open`] uses this.
    High,
    /// Shed with [`SubmitError::Degraded`] while the target shard is
    /// restarting or its queue has been full past the watermark.
    Low,
}

/// The per-session label outbox: accepted events yield provisional labels
/// here, in submit order. Disconnects (all further receives return `None`)
/// once the session is closed and every delivered label has been taken.
///
/// Delivery is bounded (`outbox_capacity`): a consumer that stops
/// draining eventually blocks its shard's flush — consumer-directed
/// backpressure — so drain promptly, and never block waiting for *later*
/// labels while leaving earlier ones untaken. One deliberate exception
/// keeps close from deadlocking: labels still pending when
/// [`IngestHandle::close`] is processed are delivered to the stream only
/// as outbox room allows (the closer is waiting on the [`CloseTicket`],
/// whose final labels cover every accepted event regardless).
pub struct Subscription {
    rx: Receiver<u8>,
    fault: Arc<OnceLock<SessionFault>>,
}

impl Subscription {
    /// Takes the next label without blocking; `None` if nothing is ready
    /// (including after the session closed and the outbox drained).
    pub fn try_recv(&self) -> Option<u8> {
        self.rx.try_recv().ok()
    }

    /// The session's terminal fault, if it was quarantined. A faulted
    /// session's stream disconnects (receives return `None`) and this
    /// reports why; `None` here means the session is healthy (or closed
    /// normally).
    pub fn fault(&self) -> Option<SessionFault> {
        self.fault.get().copied()
    }

    /// Blocks for the next label; `None` once the session is closed and
    /// the outbox is drained.
    pub fn recv(&self) -> Option<u8> {
        self.rx.recv().ok()
    }

    /// Drains every currently ready label into `out`, returning how many
    /// were appended.
    pub fn drain_into(&self, out: &mut Vec<u8>) -> usize {
        let before = out.len();
        while let Ok(label) = self.rx.try_recv() {
            out.push(label);
        }
        out.len() - before
    }
}

/// Pending result of an [`IngestHandle::close`]: the session's final
/// labels arrive once its shard worker has flushed the session's pending
/// events and closed it in the engine.
pub struct CloseTicket {
    rx: Receiver<Result<Vec<u8>, SessionFault>>,
}

impl CloseTicket {
    /// Blocks until the close completes. `Ok` carries the session's final
    /// labels (engines with delayed decisions may have revised them);
    /// `Err` is the session's terminal [`SessionFault`] — a quarantined
    /// session, a double close, or (as [`SessionFault::WorkerCrash`]) an
    /// unsupervised worker that died before replying. Never panics, never
    /// hangs.
    pub fn wait(self) -> Result<Vec<u8>, SessionFault> {
        match self.rx.recv() {
            Ok(reply) => reply,
            Err(_) => Err(SessionFault::WorkerCrash),
        }
    }

    /// Non-blocking probe; `Some` once the close has completed (same
    /// payload as [`wait`](Self::wait)).
    pub fn try_wait(&self) -> Option<Result<Vec<u8>, SessionFault>> {
        self.rx.try_recv().ok()
    }
}

// The HDR histogram grew into the telemetry crate (where the registry
// shares its bucket math); re-exported here so `traj::LatencyHistogram`
// keeps working for every existing caller.
pub use obs::LatencyHistogram;

/// Aggregate counters of one front door's lifetime, returned by
/// [`IngestFrontDoor::shutdown`] (live counters are also visible through
/// [`IngestHandle::accepted_events`] / [`IngestHandle::rejected_events`]).
#[derive(Debug, Clone)]
pub struct IngestStats {
    /// Observe events accepted by `submit`.
    pub submitted: u64,
    /// `submit` calls rejected with [`SubmitError::QueueFull`].
    pub rejected_full: u64,
    /// Events flushed into shard engines (equals `submitted` after a
    /// graceful shutdown).
    pub flushed_events: u64,
    /// Micro-batch flushes executed (each is one `observe_batch` tick).
    pub flushes: u64,
    /// Largest single flush.
    pub max_flush_batch: usize,
    /// Accepted events dropped as stray (their session was unknown to the
    /// shard — e.g. submitted after close). Zero in a fault-free run.
    pub shed_events: u64,
    /// Accepted events charged to quarantined sessions (the poison event
    /// itself, events in a panic-aborted batch, and later arrivals for an
    /// already-quarantined session). Zero in a fault-free run.
    pub quarantined_events: u64,
    /// Sessions quarantined with a terminal [`SessionFault`].
    pub quarantined_sessions: u64,
    /// Supervised-worker restarts performed.
    pub worker_restarts: u64,
    /// `submit_with_deadline` calls that gave up at their deadline.
    pub deadline_exceeded: u64,
    /// Submit→label latency of every flushed event.
    pub latency: LatencyHistogram,
}

/// Everything a graceful [`IngestFrontDoor::shutdown`] hands back: the
/// shard engines (with any still-open sessions intact) and the aggregate
/// ingestion statistics.
pub struct ShutdownReport<E> {
    /// The shard engines, in shard order.
    pub engines: Vec<E>,
    /// Aggregate counters and the merged latency histogram.
    pub stats: IngestStats,
}

/// Consecutive producer-side `QueueFull` rejections on one shard that
/// flip it into queue-degraded admission control (any accepted submit
/// resets the streak and lifts it).
const DEGRADED_WATERMARK: u64 = 256;

/// A type-erased control command. The queues carry the erased form so
/// [`Shared`] stays untyped; the typed [`IngestHandle::control`] builds the
/// closure from a concrete `FnOnce(&mut E)`, and the worker hands it
/// `&mut E` as `&mut dyn Any` (the downcast cannot fail: handles are only
/// minted by an `IngestFrontDoor<E>` of the same `E`).
type ControlFn = Box<dyn FnOnce(&mut dyn Any) + Send>;

enum Cmd {
    Open {
        outer: u64,
        /// Engine scope (tenant) the session opens under; 0 is the
        /// default namespace (see [`SessionEngine::open_scoped`]).
        scope: u32,
        sd: SdPair,
        start_time: f64,
        outbox: SyncSender<u8>,
        fault: Arc<OnceLock<SessionFault>>,
    },
    Observe {
        outer: u64,
        segment: SegmentId,
        submitted: Instant,
    },
    Close {
        outer: u64,
        reply: SyncSender<Result<Vec<u8>, SessionFault>>,
    },
    /// Engine mutation applied at the worker's next flush boundary.
    Control(ControlFn),
    Shutdown,
}

/// Per-shard fault/degradation state shared between the shard's worker
/// and every producer handle. All plain atomics — readable live, exact
/// after shutdown.
#[derive(Default)]
struct ShardHealth {
    /// The worker is mid-recovery (between catching a panic and resuming
    /// its serve loop).
    restarting: AtomicBool,
    /// Degraded because the ingress queue stayed full past the watermark.
    queue_degraded: AtomicBool,
    /// Consecutive `QueueFull` rejections observed by producers; any
    /// accepted submit resets it.
    full_streak: AtomicU64,
    restarts: AtomicU64,
    quarantined_sessions: AtomicU64,
    quarantined_events: AtomicU64,
    shed_events: AtomicU64,
    /// Low-priority opens shed while degraded ("count everything").
    shed_opens: AtomicU64,
}

impl ShardHealth {
    fn degraded(&self) -> bool {
        self.restarting.load(Ordering::SeqCst) || self.queue_degraded.load(Ordering::SeqCst)
    }
}

struct Shared {
    queues: Vec<SyncSender<Cmd>>,
    next_session: AtomicU64,
    closed: AtomicBool,
    /// Producers inside a check-closed + enqueue critical section right
    /// now. `shutdown` waits for this to reach zero after setting `closed`
    /// (a quiescence barrier), so every command whose submit returned `Ok`
    /// — even one racing the shutdown call — is in its queue before the
    /// `Shutdown` markers go out and is therefore drained, never dropped.
    inflight: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    deadline_exceeded: AtomicU64,
    outbox_capacity: usize,
    /// Consecutive `QueueFull` rejections on one shard that flip it into
    /// queue-degraded mode.
    degraded_watermark: u64,
    /// Per-shard fault/degradation state (index = shard), shared with the
    /// shard workers.
    health: Vec<Arc<ShardHealth>>,
    /// Pre-resolved per-shard telemetry counters (index = shard); inert
    /// no-op handles when the door was built without telemetry.
    obs_submitted: Vec<Counter>,
    obs_rejected: Vec<Counter>,
    obs_deadline: Vec<Counter>,
    obs_degraded: Vec<Gauge>,
    obs: Obs,
}

impl Shared {
    /// Fibonacci-hashes a session's raw id onto a shard (the same spread
    /// as [`crate::session::Sharded`]).
    fn shard_of(&self, raw: u64) -> usize {
        let h = raw.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) % self.queues.len() as u64) as usize
    }

    /// Producer-side degraded bookkeeping on an accepted submit: any
    /// success proves the queue is accepting again, so the streak resets
    /// and queue-degradation (if set) lifts.
    fn note_accept(&self, shard: usize) {
        let health = &self.health[shard];
        if health.full_streak.swap(0, Ordering::Relaxed) > 0
            && health.queue_degraded.swap(false, Ordering::SeqCst)
        {
            self.obs_degraded[shard].set(u64::from(health.degraded()));
            self.obs.event(OpsEvent::DegradedExit {
                shard: shard as u32,
            });
        }
    }

    /// Producer-side degraded bookkeeping on a `QueueFull` rejection:
    /// crossing the watermark flips the shard into queue-degraded mode.
    fn note_full(&self, shard: usize) {
        let health = &self.health[shard];
        let streak = health.full_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= self.degraded_watermark && !health.queue_degraded.swap(true, Ordering::SeqCst)
        {
            self.obs_degraded[shard].set(1);
            self.obs.event(OpsEvent::DegradedEnter {
                shard: shard as u32,
            });
        }
    }
}

/// Cheap, cloneable producer handle of an [`IngestFrontDoor<E>`]: any
/// number of threads submit per-point events concurrently; none of the
/// calls blocks on engine work (except [`IngestHandle::submit_blocking`]
/// and [`IngestHandle::control`], which wait for queue space).
///
/// The handle carries the front door's engine type `E` purely at the type
/// level (it stores no engine), so engine-specific control commands —
/// like the RL4OASD model hot-swap, `rl4oasd::SwapModel::swap_model` —
/// are compile-time checked against the engine actually behind the door.
///
/// # Example
///
/// ```
/// use traj::detector::AlwaysNormal;
/// use traj::{IngestConfig, IngestFrontDoor, SdPair, SessionMux};
/// use rnet::SegmentId;
///
/// let door = IngestFrontDoor::build(
///     2,
///     |_| SessionMux::new(AlwaysNormal::default),
///     IngestConfig::default(),
/// );
/// let handle = door.handle();
/// let sd = SdPair { source: SegmentId(0), dest: SegmentId(9) };
/// let (session, labels) = handle.open(sd, 0.0).unwrap();
/// handle.submit(session, SegmentId(3)).unwrap(); // never blocks
/// let finals = handle.close(session).unwrap().wait().unwrap();
/// assert_eq!(finals, vec![0]);
/// assert_eq!(labels.recv(), Some(0));
/// let report = door.shutdown();
/// assert_eq!(report.stats.flushed_events, 1);
/// ```
pub struct IngestHandle<E> {
    shared: Arc<Shared>,
    /// `fn(&mut E)` keeps the handle `Send + Sync` (and covariant enough)
    /// regardless of `E`, while still naming the engine type.
    _engine: PhantomData<fn(&mut E)>,
}

impl<E> Clone for IngestHandle<E> {
    fn clone(&self) -> Self {
        IngestHandle {
            shared: Arc::clone(&self.shared),
            _engine: PhantomData,
        }
    }
}

/// Whether a queued command counts toward the observe-event tallies.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Tally {
    Observe,
    Control,
}

impl<E> IngestHandle<E> {
    /// The shutdown quiescence barrier, single-sourced for every enqueue
    /// path (`push`, [`IngestHandle::submit_blocking`],
    /// [`IngestHandle::control`]): `inflight` is held across the closed
    /// check, the enqueue *and* the stats tally, so `shutdown` can wait
    /// out every concurrent producer before sealing the queues — any
    /// command whose enqueue returned `Ok` is already in its queue (and
    /// tallied) when the `Shutdown` markers go out, hence drained, never
    /// dropped or under-counted.
    fn with_inflight<T>(
        &self,
        enqueue: impl FnOnce() -> Result<T, SubmitError>,
    ) -> Result<T, SubmitError> {
        self.shared.inflight.fetch_add(1, Ordering::SeqCst);
        let result = if self.shared.closed.load(Ordering::SeqCst) {
            Err(SubmitError::ShutDown)
        } else {
            enqueue()
        };
        self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
        result
    }

    /// Enqueues a command (non-blocking) inside the quiescence barrier.
    fn push(&self, shard: usize, cmd: Cmd, tally: Tally) -> Result<(), SubmitError> {
        self.with_inflight(|| {
            let result = match self.shared.queues[shard].try_send(cmd) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(_)) => Err(SubmitError::QueueFull),
                Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShutDown),
            };
            match result {
                Ok(()) => {
                    if tally == Tally::Observe {
                        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                        self.shared.obs_submitted[shard].inc();
                    }
                    self.shared.note_accept(shard);
                }
                Err(SubmitError::QueueFull) => {
                    if tally == Tally::Observe {
                        self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                        self.shared.obs_rejected[shard].inc();
                    }
                    self.shared.note_full(shard);
                }
                Err(_) => {}
            }
            result
        })
    }

    /// Opens a session for a trip, returning its handle and the
    /// [`Subscription`] its provisional labels will arrive on.
    ///
    /// The open travels through the session's shard queue like any other
    /// event (FIFO), so events submitted afterwards are guaranteed to be
    /// processed after it.
    pub fn open(
        &self,
        sd: SdPair,
        start_time: f64,
    ) -> Result<(SessionId, Subscription), SubmitError> {
        self.open_with_priority(sd, start_time, Priority::High)
    }

    /// Like [`open`](Self::open), but subject to degraded-mode admission
    /// control: a [`Priority::Low`] open is shed with
    /// [`SubmitError::Degraded`] (nothing enqueued, the shed counted)
    /// while its target shard is restarting after a fault or its queue
    /// has stayed full past the watermark. [`Priority::High`] opens are
    /// never shed by degradation — only by a genuinely full queue.
    pub fn open_with_priority(
        &self,
        sd: SdPair,
        start_time: f64,
        priority: Priority,
    ) -> Result<(SessionId, Subscription), SubmitError> {
        self.open_scoped(0, sd, start_time, priority)
    }

    /// Like [`open_with_priority`](Self::open_with_priority), but opens
    /// the session under engine scope (tenant) `scope` — forwarded to
    /// [`SessionEngine::open_scoped`] on the shard worker, so a
    /// scope-aware engine pins the session to that scope's model epoch.
    /// Scope 0 is exactly [`open_with_priority`](Self::open_with_priority).
    pub fn open_scoped(
        &self,
        scope: u32,
        sd: SdPair,
        start_time: f64,
        priority: Priority,
    ) -> Result<(SessionId, Subscription), SubmitError> {
        let raw = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
        let shard = self.shared.shard_of(raw);
        if priority == Priority::Low && self.shared.health[shard].degraded() {
            self.shared.health[shard]
                .shed_opens
                .fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Degraded);
        }
        let (tx, rx) = sync_channel(self.shared.outbox_capacity);
        let fault = Arc::new(OnceLock::new());
        self.push(
            shard,
            Cmd::Open {
                outer: raw,
                scope,
                sd,
                start_time,
                outbox: tx,
                fault: Arc::clone(&fault),
            },
            Tally::Control,
        )?;
        Ok((SessionId::from_raw(raw), Subscription { rx, fault }))
    }

    /// Submits the next road segment of an open session. Never blocks: a
    /// full shard queue is reported as [`SubmitError::QueueFull`] and the
    /// event is **not** accepted.
    ///
    /// Submitting to a session that was never opened (or already closed)
    /// is a contract violation, but a tolerated one: the shard worker
    /// sheds the stray event (counted in
    /// [`IngestStats::shed_events`]) instead of panicking.
    pub fn submit(&self, session: SessionId, segment: SegmentId) -> Result<(), SubmitError> {
        let raw = session.raw();
        self.push(
            self.shared.shard_of(raw),
            Cmd::Observe {
                outer: raw,
                segment,
                submitted: Instant::now(),
            },
            Tally::Observe,
        )
    }

    /// Like [`submit`](Self::submit), but retries `QueueFull` under
    /// `policy`'s bounded, jittered backoff (salted by the session id so
    /// concurrent producers de-synchronise deterministically). Exhausted
    /// retries return the last `QueueFull`.
    pub fn submit_with_retry(
        &self,
        session: SessionId,
        segment: SegmentId,
        policy: &RetryPolicy,
    ) -> Result<(), SubmitError> {
        policy.run(session.raw(), || self.submit(session, segment))
    }

    /// Like [`submit`](Self::submit), but keeps retrying a full queue
    /// until `deadline`; past it the call gives up with
    /// [`SubmitError::DeadlineExceeded`] (counted in
    /// [`IngestStats::deadline_exceeded`] and per shard under
    /// `oasd_ingest_deadline_exceeded_total`). The event is **not**
    /// accepted on the error path.
    pub fn submit_with_deadline(
        &self,
        session: SessionId,
        segment: SegmentId,
        deadline: Instant,
    ) -> Result<(), SubmitError> {
        loop {
            match self.submit(session, segment) {
                Err(SubmitError::QueueFull) => {
                    if Instant::now() >= deadline {
                        let shard = self.shared.shard_of(session.raw());
                        self.shared
                            .deadline_exceeded
                            .fetch_add(1, Ordering::Relaxed);
                        self.shared.obs_deadline[shard].inc();
                        return Err(SubmitError::DeadlineExceeded);
                    }
                    std::thread::yield_now();
                }
                other => return other,
            }
        }
    }

    /// Like [`IngestHandle::submit`], but waits for queue space instead of
    /// reporting [`SubmitError::QueueFull`] — the blocking producer style
    /// for callers that prefer waiting over shedding.
    pub fn submit_blocking(
        &self,
        session: SessionId,
        segment: SegmentId,
    ) -> Result<(), SubmitError> {
        let raw = session.raw();
        let shard = self.shared.shard_of(raw);
        self.with_inflight(|| {
            self.shared.queues[shard]
                .send(Cmd::Observe {
                    outer: raw,
                    segment,
                    submitted: Instant::now(),
                })
                .map_err(|_| SubmitError::ShutDown)
                .map(|()| {
                    self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                    self.shared.obs_submitted[shard].inc();
                })
        })
    }

    /// Requests the session's close. The shard worker first flushes the
    /// session's pending events, then closes it; the final labels arrive
    /// on the returned [`CloseTicket`].
    pub fn close(&self, session: SessionId) -> Result<CloseTicket, SubmitError> {
        let raw = session.raw();
        let (tx, rx) = sync_channel(1);
        self.push(
            self.shared.shard_of(raw),
            Cmd::Close {
                outer: raw,
                reply: tx,
            },
            Tally::Control,
        )?;
        Ok(CloseTicket { rx })
    }

    /// Number of shards (and ingress queues) behind this handle.
    pub fn num_shards(&self) -> usize {
        self.shared.queues.len()
    }

    /// Live count of events accepted by `submit` so far.
    pub fn accepted_events(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Live count of `submit` calls rejected with `QueueFull` so far.
    pub fn rejected_events(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Live count of supervised-worker restarts across all shards.
    pub fn worker_restarts(&self) -> u64 {
        self.sum_health(|h| h.restarts.load(Ordering::Relaxed))
    }

    /// Live count of sessions quarantined with a terminal fault.
    pub fn quarantined_sessions(&self) -> u64 {
        self.sum_health(|h| h.quarantined_sessions.load(Ordering::Relaxed))
    }

    /// Live count of accepted events charged to quarantined sessions.
    pub fn quarantined_events(&self) -> u64 {
        self.sum_health(|h| h.quarantined_events.load(Ordering::Relaxed))
    }

    /// Live count of accepted events shed as stray (unknown session).
    pub fn shed_events(&self) -> u64 {
        self.sum_health(|h| h.shed_events.load(Ordering::Relaxed))
    }

    /// Live count of low-priority opens shed by degraded-mode admission.
    pub fn shed_opens(&self) -> u64 {
        self.sum_health(|h| h.shed_opens.load(Ordering::Relaxed))
    }

    /// Live count of `submit_with_deadline` calls that hit their deadline.
    pub fn deadline_exceeded_events(&self) -> u64 {
        self.shared.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Whether `shard` is currently in degraded-mode admission control
    /// (restarting after a fault, or queue full past the watermark).
    pub fn is_degraded(&self, shard: usize) -> bool {
        self.shared.health[shard].degraded()
    }

    /// Whether any shard is currently degraded.
    pub fn any_degraded(&self) -> bool {
        self.shared.health.iter().any(|h| h.degraded())
    }

    fn sum_health(&self, read: impl Fn(&ShardHealth) -> u64) -> u64 {
        self.shared.health.iter().map(|h| read(h)).sum()
    }
}

impl<E: SessionEngine + 'static> IngestHandle<E> {
    /// Broadcasts an engine mutation to every shard worker, each applying
    /// it at its next **flush boundary**: the worker first flushes its
    /// pending micro-batch (labelled under the pre-command engine state),
    /// then runs `command` on its engine.
    ///
    /// Ordering is per shard queue (FIFO): everything this thread enqueued
    /// before the broadcast is processed before the command, everything
    /// after it (e.g. an `open` issued after `control` returns) is
    /// processed after. Commands from different threads race per shard;
    /// for state-replacing commands like a model swap this is plain
    /// last-writer-wins.
    ///
    /// Unlike [`IngestHandle::submit`], the broadcast **waits for queue
    /// space** instead of reporting [`SubmitError::QueueFull`] — a partial
    /// broadcast (some shards swapped, some not) would be worse than a
    /// short blocking send on queues the workers are actively draining.
    /// Returns [`SubmitError::ShutDown`] if the door is (or becomes)
    /// closed; workers that already exited simply never apply it.
    pub fn control(
        &self,
        command: impl FnOnce(&mut E) + Clone + Send + 'static,
    ) -> Result<(), SubmitError> {
        self.with_inflight(|| {
            for queue in &self.shared.queues {
                let apply = command.clone();
                let erased: ControlFn = Box::new(move |engine: &mut dyn Any| {
                    let engine = engine
                        .downcast_mut::<E>()
                        .expect("front-door engine type matches its handle type");
                    apply(engine);
                });
                if queue.send(Cmd::Control(erased)).is_err() {
                    return Err(SubmitError::ShutDown);
                }
            }
            Ok(())
        })
    }
}

/// Per-worker report handed back on shutdown.
struct WorkerReport<E> {
    engine: E,
    flushed_events: u64,
    flushes: u64,
    max_flush_batch: usize,
    latency: LatencyHistogram,
}

/// One session's shard-side routing state.
struct Route {
    /// Shard-local engine handle.
    inner: SessionId,
    /// Label outbox toward the [`Subscription`].
    outbox: SyncSender<u8>,
    /// Terminal-fault cell shared with the [`Subscription`]; set exactly
    /// once if the session is quarantined.
    fault: Arc<OnceLock<SessionFault>>,
}

/// One persistent shard worker: owns its engine and its reused batch
/// scratch; drains its ingress queue; flushes micro-batches per the
/// [`FlushPolicy`].
struct Worker<E> {
    engine: E,
    rx: Receiver<Cmd>,
    policy: FlushPolicy,
    shard: usize,
    /// outer raw id → routing state
    routes: HashMap<u64, Route>,
    /// Sessions terminated with a fault; later events are counted as
    /// quarantined and closes reply with the fault. Bounded by the number
    /// of faults, so entries are kept for the worker's lifetime.
    quarantined: HashMap<u64, SessionFault>,
    /// Pending micro-batch, in shard-local handles (fed to the engine).
    batch: Vec<(SessionId, SegmentId)>,
    /// Outer id + submit time per pending event (for outbox + latency).
    meta: Vec<(u64, Instant)>,
    /// Label output of the last flush (reused allocation).
    out: Vec<u8>,
    report: WorkerReportCounters,
    /// Fault/degradation state shared with the producer handles.
    health: Arc<ShardHealth>,
    /// Pre-resolved telemetry handles for this shard; all inert no-ops
    /// when the door was built without telemetry, so the flush path does
    /// no extra clock reads or atomics in that case.
    tele: WorkerTelemetry,
}

/// Per-shard telemetry handles, resolved once at worker construction.
struct WorkerTelemetry {
    /// submit → flush-start wait per event (histogram only, no span
    /// record: millions of events would flood the span ring).
    enqueue_wait: StageHandle,
    /// Whole micro-batch flush (drain + compute + deliver + maintain).
    flush: StageHandle,
    /// The `observe_batch` call.
    batch_compute: StageHandle,
    /// Outbox fan-out of fresh labels.
    label_delivery: StageHandle,
    /// One supervised-worker recovery (salvage + rebuild + re-import).
    restart_sweep: StageHandle,
    /// submit→label end-to-end latency (mirror of the per-worker
    /// [`LatencyHistogram`] so snapshots and Prometheus scrapes see it).
    latency: Histo,
    flushed_events: Counter,
    flushes: Counter,
    worker_restarts: Counter,
    quarantined_sessions: Counter,
    quarantined_events: Counter,
    shed_events: Counter,
    /// 1 while this shard is degraded (restarting or queue-degraded).
    degraded: Gauge,
    /// For structured ops events (worker_restart, session_quarantined,
    /// degraded_enter/exit).
    obs: Obs,
}

impl WorkerTelemetry {
    fn resolve(obs: &Obs, shard: usize) -> Self {
        let shard_label = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &shard_label)];
        let shard = shard as u32;
        WorkerTelemetry {
            enqueue_wait: obs.stage(Stage::EnqueueWait, shard),
            flush: obs.stage(Stage::Flush, shard),
            batch_compute: obs.stage(Stage::BatchCompute, shard),
            label_delivery: obs.stage(Stage::LabelDelivery, shard),
            restart_sweep: obs.stage(Stage::RestartSweep, shard),
            latency: obs.histogram(names::INGEST_LATENCY, labels),
            flushed_events: obs.counter(names::INGEST_FLUSHED, labels),
            flushes: obs.counter(names::INGEST_FLUSHES, labels),
            worker_restarts: obs.counter(names::INGEST_WORKER_RESTARTS, labels),
            quarantined_sessions: obs.counter(names::INGEST_QUARANTINED_SESSIONS, labels),
            quarantined_events: obs.counter(names::INGEST_QUARANTINED_EVENTS, labels),
            shed_events: obs.counter(names::INGEST_SHED_EVENTS, labels),
            degraded: obs.gauge(names::INGEST_DEGRADED, labels),
            obs: obs.clone(),
        }
    }
}

#[derive(Default)]
struct WorkerReportCounters {
    flushed_events: u64,
    flushes: u64,
    max_flush_batch: usize,
    latency: LatencyHistogram,
}

enum Control {
    Continue,
    Drain,
}

impl<E: SessionEngine + 'static> Worker<E> {
    fn new(
        engine: E,
        rx: Receiver<Cmd>,
        policy: FlushPolicy,
        obs: &Obs,
        shard: usize,
        health: Arc<ShardHealth>,
    ) -> Self {
        let max_batch = policy.max_batch.max(1);
        Worker {
            engine,
            rx,
            policy: FlushPolicy {
                max_batch,
                max_delay: policy.max_delay,
            },
            shard,
            routes: HashMap::new(),
            quarantined: HashMap::new(),
            batch: Vec::with_capacity(max_batch),
            meta: Vec::with_capacity(max_batch),
            out: Vec::new(),
            report: WorkerReportCounters::default(),
            health,
            tele: WorkerTelemetry::resolve(obs, shard),
        }
    }

    /// Flushes the pending micro-batch into the engine and fans the labels
    /// out to the session outboxes.
    ///
    /// Outbox delivery is blocking (an undrained outbox stalls this
    /// shard's flush — consumer-directed backpressure; a dropped
    /// [`Subscription`] just discards its labels) **except** for the
    /// session named in `closing`: its consumer is, by protocol, already
    /// waiting on the [`CloseTicket`] rather than draining the
    /// subscription, so blocking on its full outbox would deadlock the
    /// shard. Labels that do not fit that outbox are dropped from the
    /// *stream* only — the final labels returned by the close still cover
    /// every accepted event.
    fn flush(&mut self, closing: Option<u64>) {
        if self.batch.is_empty() {
            return;
        }
        // Stage tracing is resolved per shard at construction; with
        // telemetry disabled `t_start` is never read and no extra clock
        // read or atomic happens on this path. With telemetry on the
        // adjacent stages share timestamps (`t_start`, the `done` stamp
        // the latency loop needs anyway, and one read per remaining
        // boundary) — micro-batches are often just a few events, so
        // per-flush clock reads are the dominant telemetry cost.
        let t_start = if self.tele.flush.is_live() {
            Some(Instant::now())
        } else {
            None
        };
        if let Some(t0) = t_start {
            for &(_, submitted) in &self.meta {
                self.tele
                    .enqueue_wait
                    .record_nanos(t0.saturating_duration_since(submitted).as_nanos() as u64);
            }
        }
        self.engine.observe_batch(&self.batch, &mut self.out);
        debug_assert_eq!(self.out.len(), self.batch.len());
        let done = Instant::now();
        if let Some(t0) = t_start {
            // Includes the enqueue-wait bookkeeping above — a handful of
            // atomic adds, noise next to the batched forward pass.
            self.tele.batch_compute.record_span(t0, done);
        }
        self.report.flushes += 1;
        self.report.flushed_events += self.batch.len() as u64;
        self.report.max_flush_batch = self.report.max_flush_batch.max(self.batch.len());
        self.tele.flushes.inc();
        self.tele.flushed_events.add(self.batch.len() as u64);
        for (k, &(outer, submitted)) in self.meta.iter().enumerate() {
            let latency = done.saturating_duration_since(submitted);
            self.report.latency.record(latency);
            self.tele.latency.record(latency);
            if let Some(route) = self.routes.get(&outer) {
                if closing == Some(outer) {
                    let _ = route.outbox.try_send(self.out[k]);
                } else {
                    let _ = route.outbox.send(self.out[k]);
                }
            }
        }
        if self.tele.label_delivery.is_live() {
            self.tele.label_delivery.record_span(done, Instant::now());
        }
        self.batch.clear();
        self.meta.clear();
        // Flush boundary (the same seam control commands use): let the
        // engine run its background maintenance — e.g. sweeping idle
        // sessions into the hibernated cold tier — where it can never
        // split a micro-batch.
        self.engine.maintain();
        if let Some(t0) = t_start {
            self.tele.flush.record_span(t0, Instant::now());
        }
    }

    /// Terminates a session with `fault`: its [`Subscription`] sees the
    /// fault and disconnects, later events are counted as quarantined,
    /// a later close replies with the fault. With `close_in_engine` the
    /// session's (still-consistent) engine state is also released — the
    /// poison path uses this; panic recovery does not (the wrecked engine
    /// is discarded wholesale).
    fn quarantine(&mut self, outer: u64, fault: SessionFault, close_in_engine: bool) {
        let Some(route) = self.routes.remove(&outer) else {
            return;
        };
        let _ = route.fault.set(fault);
        drop(route.outbox); // disconnects the Subscription once drained
        if close_in_engine {
            let inner = route.inner;
            let _ = catch_unwind(AssertUnwindSafe(|| self.engine.close(inner)));
        }
        self.quarantined.insert(outer, fault);
        self.health
            .quarantined_sessions
            .fetch_add(1, Ordering::Relaxed);
        self.tele.quarantined_sessions.inc();
        self.tele.obs.event(OpsEvent::SessionQuarantined {
            shard: self.shard as u32,
        });
    }

    fn handle(&mut self, cmd: Cmd, deadline: &mut Instant) -> Control {
        match cmd {
            Cmd::Open {
                outer,
                scope,
                sd,
                start_time,
                outbox,
                fault,
            } => {
                let inner = self.engine.open_scoped(scope, sd, start_time);
                self.routes.insert(
                    outer,
                    Route {
                        inner,
                        outbox,
                        fault,
                    },
                );
            }
            Cmd::Observe {
                outer,
                segment,
                submitted,
            } => {
                if self.quarantined.contains_key(&outer) {
                    // Late arrival for a terminated session: count, drop.
                    self.health
                        .quarantined_events
                        .fetch_add(1, Ordering::Relaxed);
                    self.tele.quarantined_events.inc();
                } else if let Some(route) = self.routes.get(&outer) {
                    let inner = route.inner;
                    if self.engine.admit(segment) {
                        if self.batch.is_empty() {
                            // SLO clock starts at submit: queue wait counts.
                            *deadline = submitted + self.policy.max_delay;
                        }
                        self.batch.push((inner, segment));
                        self.meta.push((outer, submitted));
                        if self.batch.len() >= self.policy.max_batch {
                            self.flush(None);
                        }
                    } else {
                        // Poison: the engine pre-screened this event as
                        // unprocessable, so it never enters a batch and can
                        // never panic a flush. Label what the session
                        // already has pending, then terminate it.
                        self.flush(None);
                        self.health
                            .quarantined_events
                            .fetch_add(1, Ordering::Relaxed);
                        self.tele.quarantined_events.inc();
                        self.quarantine(outer, SessionFault::PoisonEvent, true);
                    }
                } else {
                    // Stray: session unknown to this shard (submitted after
                    // close, or never opened). Shed instead of panicking.
                    self.health.shed_events.fetch_add(1, Ordering::Relaxed);
                    self.tele.shed_events.inc();
                }
            }
            Cmd::Close { outer, reply } => {
                if let Some(&fault) = self.quarantined.get(&outer) {
                    let _ = reply.send(Err(fault));
                } else if self.routes.contains_key(&outer) {
                    // The session's pending events must land before the
                    // close (its own stream delivery downgraded to
                    // non-blocking: the closer is waiting on the ticket,
                    // not draining).
                    self.flush(Some(outer));
                    let route = self
                        .routes
                        .remove(&outer)
                        .expect("route checked present; flush removes none");
                    drop(route.outbox); // disconnects the Subscription once drained
                    let labels = self.engine.close(route.inner);
                    let _ = reply.send(Ok(labels));
                } else {
                    // Double close or never-opened session: an error on
                    // the ticket, not a worker panic.
                    let _ = reply.send(Err(SessionFault::UnknownSession));
                }
            }
            Cmd::Control(apply) => {
                // Flush boundary: the pending micro-batch is labelled
                // under the pre-command engine state before the command
                // lands, so a control never splits a batch.
                self.flush(None);
                apply(&mut self.engine as &mut dyn Any);
            }
            Cmd::Shutdown => return Control::Drain,
        }
        Control::Continue
    }

    /// The serve loop: drains the ingress queue until shutdown (or every
    /// sender is gone). Split from [`run`](Self::run) so the supervised
    /// variant can re-enter it after recovering from a panic.
    fn serve(&mut self) {
        let mut deadline = Instant::now();
        loop {
            let cmd = if self.batch.is_empty() {
                // Idle: park until work arrives (or every sender is gone).
                match self.rx.recv() {
                    Ok(cmd) => cmd,
                    Err(_) => return,
                }
            } else {
                let now = Instant::now();
                if now >= deadline {
                    self.flush(None);
                    continue;
                }
                match self.rx.recv_timeout(deadline - now) {
                    Ok(cmd) => cmd,
                    Err(RecvTimeoutError::Timeout) => {
                        self.flush(None);
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            };
            if let Control::Drain = self.handle(cmd, &mut deadline) {
                // Graceful shutdown: everything enqueued before the
                // Shutdown marker has already been received (FIFO); sweep
                // any stragglers that raced the marker, then stop.
                while let Ok(cmd) = self.rx.try_recv() {
                    let _ = self.handle(cmd, &mut deadline);
                }
                return;
            }
        }
    }

    fn finish(mut self) -> WorkerReport<E> {
        self.flush(None);
        WorkerReport {
            engine: self.engine,
            flushed_events: self.report.flushed_events,
            flushes: self.report.flushes,
            max_flush_batch: self.report.max_flush_batch,
            latency: self.report.latency,
        }
    }

    fn run(mut self) -> WorkerReport<E> {
        self.serve();
        self.finish()
    }
}

impl<E: SupervisedEngine + 'static> Worker<E> {
    /// The supervised serve loop: any panic that escapes batch processing
    /// is caught, the shard recovers in place (quarantine + salvage +
    /// engine rebuild), and serving resumes — the worker thread never
    /// dies from an engine panic.
    fn run_supervised(mut self, factory: Arc<dyn Fn(usize) -> E + Send + Sync>) -> WorkerReport<E> {
        loop {
            match catch_unwind(AssertUnwindSafe(|| self.serve())) {
                Ok(()) => break,
                Err(_panic) => self.recover(&factory),
            }
        }
        self.finish()
    }

    /// One recovery sweep after a caught panic.
    ///
    /// The aborted micro-batch's events are unlabelled and the engine
    /// state behind them cannot be trusted, so every session implicated
    /// in that batch is quarantined ([`SessionFault::WorkerCrash`]).
    /// Every *other* session is salvaged byte-exactly: the wrecked engine
    /// exports each survivor through the hibernate freeze path, a fresh
    /// engine from the construction factory re-imports them, and the
    /// routes are repointed. Sessions the export or import cannot carry
    /// across are quarantined as [`SessionFault::Unsalvageable`] — never
    /// silently dropped. Panics injected at a flush boundary (the batch
    /// is empty there) therefore lose nothing at all.
    fn recover(&mut self, factory: &Arc<dyn Fn(usize) -> E + Send + Sync>) {
        self.health.restarting.store(true, Ordering::SeqCst);
        self.tele.degraded.set(1);
        self.tele.obs.event(OpsEvent::DegradedEnter {
            shard: self.shard as u32,
        });
        let span = self.tele.restart_sweep.start();
        let quarantined_before = self.quarantined.len();

        // 1. Quarantine every session implicated in the aborted batch.
        let aborted_events = self.meta.len() as u64;
        if aborted_events > 0 {
            self.health
                .quarantined_events
                .fetch_add(aborted_events, Ordering::Relaxed);
            self.tele.quarantined_events.add(aborted_events);
        }
        let mut implicated: Vec<u64> = self.meta.iter().map(|&(outer, _)| outer).collect();
        implicated.sort_unstable();
        implicated.dedup();
        self.batch.clear();
        self.meta.clear();
        for outer in implicated {
            self.quarantine(outer, SessionFault::WorkerCrash, false);
        }

        // 2. Rebuild the engine and salvage the survivors.
        let mut wrecked = std::mem::replace(&mut self.engine, (factory)(self.shard));
        let exported =
            catch_unwind(AssertUnwindSafe(|| wrecked.export_sessions())).unwrap_or_default();
        drop(wrecked);
        let by_inner: HashMap<SessionId, u64> = self
            .routes
            .iter()
            .map(|(&outer, route)| (route.inner, outer))
            .collect();
        let mut recovered: HashSet<u64> = HashSet::new();
        let mut salvaged = 0u64;
        for (old_inner, blob) in exported {
            let Some(&outer) = by_inner.get(&old_inner) else {
                continue; // exported state nobody routes to any more
            };
            let imported = catch_unwind(AssertUnwindSafe(|| self.engine.import_session(&blob)))
                .ok()
                .flatten();
            match imported {
                Some(new_inner) => {
                    if let Some(route) = self.routes.get_mut(&outer) {
                        route.inner = new_inner;
                    }
                    recovered.insert(outer);
                    salvaged += 1;
                }
                None => self.quarantine(outer, SessionFault::Unsalvageable, false),
            }
        }

        // 3. Routed sessions the export skipped are unsalvageable too —
        // quarantined explicitly, never left to hang.
        let lost: Vec<u64> = self
            .routes
            .keys()
            .filter(|outer| !recovered.contains(outer))
            .copied()
            .collect();
        for outer in lost {
            self.quarantine(outer, SessionFault::Unsalvageable, false);
        }

        self.health.restarts.fetch_add(1, Ordering::Relaxed);
        self.tele.worker_restarts.inc();
        self.tele.obs.event(OpsEvent::WorkerRestart {
            shard: self.shard as u32,
            quarantined: (self.quarantined.len() - quarantined_before) as u64,
            salvaged,
        });
        self.tele.restart_sweep.finish(span);
        self.health.restarting.store(false, Ordering::SeqCst);
        self.tele.degraded.set(u64::from(self.health.degraded()));
        self.tele.obs.event(OpsEvent::DegradedExit {
            shard: self.shard as u32,
        });
    }
}

/// The async ingestion front door: one bounded ingress queue + one
/// persistent worker thread per shard, micro-batching per-point arrivals
/// into [`SessionEngine::observe_batch`] ticks under a [`FlushPolicy`].
///
/// See the [module docs](self) for the full contract. Construct with
/// [`IngestFrontDoor::new`] / [`IngestFrontDoor::build`], produce through
/// cloned [`IngestHandle`]s, and finish with [`IngestFrontDoor::shutdown`]
/// to drain in-flight events and recover the shard engines.
pub struct IngestFrontDoor<E> {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<WorkerReport<E>>>,
}

impl<E: SessionEngine + Send + 'static> IngestFrontDoor<E> {
    /// Shared construction: builds the queues, health cells and shared
    /// state, then hands each [`Worker`] to `spawn` (which decides
    /// whether it runs plain or supervised).
    fn construct(
        shards: Vec<E>,
        config: IngestConfig,
        spawn: impl Fn(Worker<E>, usize) -> JoinHandle<WorkerReport<E>>,
    ) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        let num_shards = shards.len();
        let health: Vec<Arc<ShardHealth>> = (0..num_shards)
            .map(|_| Arc::new(ShardHealth::default()))
            .collect();
        let mut queues = Vec::with_capacity(num_shards);
        let mut workers = Vec::with_capacity(num_shards);
        for (i, engine) in shards.into_iter().enumerate() {
            let (tx, rx) = sync_channel(config.queue_capacity);
            queues.push(tx);
            let worker = Worker::new(
                engine,
                rx,
                config.flush,
                &config.obs,
                i,
                Arc::clone(&health[i]),
            );
            workers.push(spawn(worker, i));
        }
        let shard_counter = |name: &str| -> Vec<Counter> {
            (0..num_shards)
                .map(|i| config.obs.counter(name, &[("shard", &i.to_string())]))
                .collect()
        };
        let obs_degraded = (0..num_shards)
            .map(|i| {
                config
                    .obs
                    .gauge(names::INGEST_DEGRADED, &[("shard", &i.to_string())])
            })
            .collect();
        IngestFrontDoor {
            shared: Arc::new(Shared {
                queues,
                next_session: AtomicU64::new(0),
                closed: AtomicBool::new(false),
                inflight: AtomicU64::new(0),
                accepted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                deadline_exceeded: AtomicU64::new(0),
                outbox_capacity: config.outbox_capacity.max(1),
                degraded_watermark: DEGRADED_WATERMARK,
                health,
                obs_submitted: shard_counter(names::INGEST_SUBMITTED),
                obs_rejected: shard_counter(names::INGEST_REJECTED),
                obs_deadline: shard_counter(names::INGEST_DEADLINE_EXCEEDED),
                obs_degraded,
                obs: config.obs.clone(),
            }),
            workers,
        }
    }

    /// Spawns one persistent worker per pre-built shard engine.
    ///
    /// # Panics
    /// Panics if `shards` is empty or `config.queue_capacity` is zero.
    pub fn new(shards: Vec<E>, config: IngestConfig) -> Self {
        Self::construct(shards, config, |worker, i| {
            std::thread::Builder::new()
                .name(format!("ingest-shard-{i}"))
                .spawn(move || worker.run())
                .expect("spawn ingest worker")
        })
    }

    /// Builds `n` shards from a factory called with each shard index.
    pub fn build(n: usize, mut factory: impl FnMut(usize) -> E, config: IngestConfig) -> Self {
        Self::new((0..n).map(&mut factory).collect(), config)
    }

    /// A cheap, cloneable producer handle, typed by this door's engine.
    pub fn handle(&self) -> IngestHandle<E> {
        IngestHandle {
            shared: Arc::clone(&self.shared),
            _engine: PhantomData,
        }
    }

    /// Number of shards (= ingress queues = worker threads).
    pub fn num_shards(&self) -> usize {
        self.shared.queues.len()
    }

    /// Gracefully shuts down: rejects further submits, drains **every**
    /// event whose `submit` returned `Ok` — including ones racing this
    /// call — flushes, joins the workers and returns the shard engines
    /// plus aggregate [`IngestStats`].
    ///
    /// The drain guarantee is a quiescence barrier, not best-effort: after
    /// sealing the door this method waits for all in-flight producer
    /// enqueues to land before the shutdown markers enter the queues, so
    /// an accepted event is always *ahead of* the marker and gets flushed,
    /// and an accepted close always completes its [`CloseTicket`].
    ///
    /// Sessions still open keep their state inside the returned engines
    /// (their subscriptions disconnect without final labels).
    ///
    /// # Panics
    /// Propagates a worker panic (e.g. from a submit on a closed session).
    pub fn shutdown(mut self) -> ShutdownReport<E> {
        self.shared.closed.store(true, Ordering::SeqCst);
        // Quiescence: wait out producers already past the closed check.
        // Their critical section is a handful of instructions (plus, for
        // `submit_blocking`, a queue wait the draining worker unblocks),
        // so this spin is short-lived by construction.
        while self.shared.inflight.load(Ordering::SeqCst) > 0 {
            std::thread::yield_now();
        }
        for queue in &self.shared.queues {
            // Blocking send is fine: the worker is draining this queue.
            // An already-dead worker returns Err, which is exactly the
            // state Shutdown would have produced.
            let _ = queue.send(Cmd::Shutdown);
        }
        let mut engines = Vec::with_capacity(self.workers.len());
        let mut stats = IngestStats {
            submitted: 0,
            rejected_full: 0,
            flushed_events: 0,
            flushes: 0,
            max_flush_batch: 0,
            shed_events: 0,
            quarantined_events: 0,
            quarantined_sessions: 0,
            worker_restarts: 0,
            deadline_exceeded: 0,
            latency: LatencyHistogram::new(),
        };
        for worker in std::mem::take(&mut self.workers) {
            match worker.join() {
                Ok(report) => {
                    stats.flushed_events += report.flushed_events;
                    stats.flushes += report.flushes;
                    stats.max_flush_batch = stats.max_flush_batch.max(report.max_flush_batch);
                    stats.latency.merge(&report.latency);
                    engines.push(report.engine);
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        // Read the tallies after the barrier + joins so they cover every
        // producer that got an `Ok` (`submitted == flushed_events` is the
        // graceful-shutdown invariant the tests pin).
        stats.submitted = self.shared.accepted.load(Ordering::SeqCst);
        stats.rejected_full = self.shared.rejected.load(Ordering::SeqCst);
        stats.deadline_exceeded = self.shared.deadline_exceeded.load(Ordering::SeqCst);
        for health in &self.shared.health {
            stats.shed_events += health.shed_events.load(Ordering::SeqCst);
            stats.quarantined_events += health.quarantined_events.load(Ordering::SeqCst);
            stats.quarantined_sessions += health.quarantined_sessions.load(Ordering::SeqCst);
            stats.worker_restarts += health.restarts.load(Ordering::SeqCst);
        }
        ShutdownReport { engines, stats }
    }
}

impl<E: SupervisedEngine + Send + 'static> IngestFrontDoor<E> {
    /// Like [`IngestFrontDoor::build`], but each shard worker runs under
    /// a supervisor: a panic in batch processing is caught, the sessions
    /// implicated in the aborted micro-batch are quarantined with an
    /// explicit [`SessionFault`], every other session on the shard is
    /// salvaged byte-exactly through the hibernate freeze/thaw path into
    /// a fresh engine built by `factory`, and serving resumes. `factory`
    /// is retained for the door's lifetime — it must produce an engine
    /// equivalent to shard `i`'s original one (same model weights, same
    /// network), or salvaged sessions would relabel differently.
    ///
    /// Poison events ([`SessionEngine::admit`] returning `false`) never
    /// reach the engine at all: they quarantine their own session without
    /// a restart.
    ///
    /// # Panics
    /// Panics if `n` is zero or `config.queue_capacity` is zero.
    pub fn build_supervised(
        n: usize,
        factory: impl Fn(usize) -> E + Send + Sync + 'static,
        config: IngestConfig,
    ) -> Self {
        let factory: Arc<dyn Fn(usize) -> E + Send + Sync> = Arc::new(factory);
        let engines: Vec<E> = (0..n).map(|i| (factory)(i)).collect();
        Self::construct(engines, config, move |worker, i| {
            let factory = Arc::clone(&factory);
            std::thread::Builder::new()
                .name(format!("ingest-shard-{i}"))
                .spawn(move || worker.run_supervised(factory))
                .expect("spawn supervised ingest worker")
        })
    }
}

impl<E> Drop for IngestFrontDoor<E> {
    /// Best-effort teardown when dropped without [`IngestFrontDoor::shutdown`]:
    /// flags the door closed and nudges the workers to exit. Does not join
    /// (detached workers exit once their queues disconnect); prefer an
    /// explicit `shutdown` for drain guarantees and stats.
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // shutdown already ran
        }
        self.shared.closed.store(true, Ordering::Release);
        for queue in &self.shared.queues {
            let _ = queue.try_send(Cmd::Shutdown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::OnlineDetector;
    use crate::session::SessionMux;

    fn sd(a: u32, b: u32) -> SdPair {
        SdPair {
            source: SegmentId(a),
            dest: SegmentId(b),
        }
    }

    /// Labels each segment by parity — discriminative enough to catch
    /// routing or ordering mistakes through the queues.
    #[derive(Default)]
    struct Parity {
        labels: Vec<u8>,
    }

    impl OnlineDetector for Parity {
        fn name(&self) -> &'static str {
            "Parity"
        }
        fn begin(&mut self, _sd: SdPair, _start_time: f64) {
            self.labels.clear();
        }
        fn observe(&mut self, segment: SegmentId) -> u8 {
            let label = (segment.0 & 1) as u8;
            self.labels.push(label);
            label
        }
        fn finish(&mut self) -> Vec<u8> {
            std::mem::take(&mut self.labels)
        }
    }

    fn parity_door(
        shards: usize,
        config: IngestConfig,
    ) -> IngestFrontDoor<SessionMux<Parity, fn() -> Parity>> {
        IngestFrontDoor::build(
            shards,
            |_| SessionMux::new(Parity::default as fn() -> Parity),
            config,
        )
    }

    #[test]
    fn submit_labels_flow_back_in_order() {
        let door = parity_door(3, IngestConfig::default());
        let handle = door.handle();
        assert_eq!(handle.num_shards(), 3);
        let (s1, sub1) = handle.open(sd(0, 9), 0.0).unwrap();
        let (s2, sub2) = handle.open(sd(1, 8), 0.0).unwrap();
        for seg in [2u32, 3, 5] {
            handle.submit(s1, SegmentId(seg)).unwrap();
        }
        handle.submit(s2, SegmentId(7)).unwrap();
        let t1 = handle.close(s1).unwrap();
        let t2 = handle.close(s2).unwrap();
        assert_eq!(t1.wait().unwrap(), vec![0, 1, 1]);
        assert_eq!(t2.wait().unwrap(), vec![1]);
        // Subscriptions carry the provisional stream, then disconnect.
        let mut got = Vec::new();
        while let Some(l) = sub1.recv() {
            got.push(l);
        }
        assert_eq!(got, vec![0, 1, 1]);
        assert_eq!(sub2.recv(), Some(1));
        assert_eq!(sub2.recv(), None);
        let report = door.shutdown();
        assert_eq!(report.stats.submitted, 4);
        assert_eq!(report.stats.flushed_events, 4);
        assert_eq!(report.stats.rejected_full, 0);
        assert_eq!(report.stats.latency.count(), 4);
        assert_eq!(report.engines.len(), 3);
    }

    #[test]
    fn max_batch_one_flushes_every_event_alone() {
        let door = parity_door(
            1,
            IngestConfig {
                flush: FlushPolicy::immediate(),
                ..Default::default()
            },
        );
        let handle = door.handle();
        let (s, sub) = handle.open(sd(0, 9), 0.0).unwrap();
        for seg in 0..10u32 {
            handle.submit(s, SegmentId(seg)).unwrap();
        }
        handle.close(s).unwrap().wait().unwrap();
        let mut labels = Vec::new();
        while let Some(l) = sub.recv() {
            labels.push(l);
        }
        assert_eq!(labels, vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1]);
        let report = door.shutdown();
        assert_eq!(report.stats.flushes, 10, "immediate policy batches nothing");
        assert_eq!(report.stats.max_flush_batch, 1);
    }

    #[test]
    fn shutdown_drains_unflushed_batches() {
        // A policy that never flushes on its own within the test window.
        let door = parity_door(
            2,
            IngestConfig {
                flush: FlushPolicy::new(1_000_000, Duration::from_secs(3600)),
                ..Default::default()
            },
        );
        let handle = door.handle();
        let (s, sub) = handle.open(sd(0, 9), 0.0).unwrap();
        for seg in [1u32, 2, 3] {
            handle.submit(s, SegmentId(seg)).unwrap();
        }
        let report = door.shutdown();
        assert_eq!(report.stats.flushed_events, 3, "shutdown flushed the batch");
        let mut labels = Vec::new();
        sub.drain_into(&mut labels);
        assert_eq!(labels, vec![1, 0, 1]);
        // The session never closed: its state is still in the engine.
        let open_sessions: usize = report.engines.iter().map(|e| e.active_sessions()).sum();
        assert_eq!(open_sessions, 1);
        assert!(handle.submit(s, SegmentId(9)).is_err(), "door is closed");
        assert_eq!(handle.submit(s, SegmentId(9)), Err(SubmitError::ShutDown));
    }

    #[test]
    fn handles_are_cloneable_across_threads() {
        let door = parity_door(2, IngestConfig::default());
        let handle = door.handle();
        let mut joins = Vec::new();
        for p in 0..4u32 {
            let h = handle.clone();
            joins.push(std::thread::spawn(move || {
                let (s, _sub) = h.open(sd(p, p + 1), 0.0).unwrap();
                for seg in 0..50u32 {
                    while h.submit(s, SegmentId(seg)) == Err(SubmitError::QueueFull) {
                        std::thread::yield_now();
                    }
                }
                h.close(s).unwrap().wait().unwrap().len()
            }));
        }
        let total: usize = joins.into_iter().map(|j| j.join().unwrap()).sum();
        assert_eq!(total, 200);
        let report = door.shutdown();
        assert_eq!(report.stats.flushed_events, 200);
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_rejected() {
        let _ = parity_door(0, IngestConfig::default());
    }

    /// Regression: closing a session whose pending labels exceed the
    /// outbox capacity must not deadlock the shard — the close-triggered
    /// flush downgrades that session's stream delivery to non-blocking,
    /// and the final labels still cover every event.
    #[test]
    fn close_with_overfull_outbox_does_not_deadlock() {
        const OUTBOX: usize = 2;
        const EVENTS: u32 = 10;
        let door = parity_door(
            1,
            IngestConfig {
                // Never flush on its own: everything is pending at close.
                flush: FlushPolicy::new(1_000_000, Duration::from_secs(3600)),
                outbox_capacity: OUTBOX,
                ..Default::default()
            },
        );
        let handle = door.handle();
        let (s, sub) = handle.open(sd(0, 9), 0.0).unwrap();
        for seg in 0..EVENTS {
            handle.submit(s, SegmentId(seg)).unwrap();
        }
        // Close without draining the subscription first — the pattern
        // that would deadlock against a blocking outbox send.
        let finals = handle.close(s).unwrap().wait().unwrap();
        assert_eq!(finals.len(), EVENTS as usize);
        // The stream got what fit; the rest went only to the finals.
        let mut streamed = Vec::new();
        while let Some(l) = sub.recv() {
            streamed.push(l);
        }
        assert_eq!(streamed.len(), OUTBOX);
        assert_eq!(streamed, finals[..OUTBOX]);
        let report = door.shutdown();
        assert_eq!(report.stats.flushed_events, EVENTS as u64);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for nanos in [1u64, 2, 3, 15] {
            h.record(Duration::from_nanos(nanos));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.percentile(0.0), Duration::from_nanos(1));
        assert_eq!(h.percentile(1.0), Duration::from_nanos(15));
        assert_eq!(h.max(), Duration::from_nanos(15));
    }

    #[test]
    fn histogram_percentiles_within_bucket_resolution() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(Duration::from_nanos(i * 1_000)); // 1us..10ms
        }
        for (q, want_nanos) in [(0.5, 5_000_000.0), (0.95, 9_500_000.0), (0.99, 9_900_000.0)] {
            let got = h.percentile(q).as_nanos() as f64;
            let err = (got - want_nanos).abs() / want_nanos;
            assert!(err < 0.08, "p{q}: got {got}, want {want_nanos}, err {err}");
        }
        assert_eq!(h.max(), Duration::from_nanos(10_000_000));
        let mean = h.mean().as_nanos() as f64;
        assert!((mean - 5_000_500.0).abs() < 1_000.0);
    }

    /// A minimal engine with swappable shared state: each session is
    /// stamped with the engine's `current` value at `open` and every one
    /// of its events is labelled with that stamp — a miniature of the
    /// RL4OASD model-epoch hot-swap (new sessions see the new state, open
    /// sessions keep the old).
    struct Stamp {
        current: u8,
        sessions: crate::SessionSlab<(u8, Vec<u8>)>,
    }

    impl SessionEngine for Stamp {
        fn engine_name(&self) -> &'static str {
            "Stamp"
        }
        fn open(&mut self, _sd: SdPair, _start_time: f64) -> SessionId {
            let stamp = self.current;
            self.sessions.insert((stamp, Vec::new()))
        }
        fn observe(&mut self, session: SessionId, _segment: SegmentId) -> u8 {
            let (stamp, history) = self.sessions.get_mut(session);
            history.push(*stamp);
            *stamp
        }
        fn close(&mut self, session: SessionId) -> Vec<u8> {
            self.sessions.remove(session).1
        }
        fn active_sessions(&self) -> usize {
            self.sessions.len()
        }
    }

    /// Control commands are applied at a flush boundary, strictly after
    /// everything enqueued before the broadcast and strictly before
    /// everything enqueued after it — so sessions opened before the
    /// command keep the old engine state and sessions opened after see
    /// the new one, even with a policy that never flushes on its own.
    #[test]
    fn control_applies_at_flush_boundary_between_opens() {
        let door = IngestFrontDoor::build(
            2,
            |_| Stamp {
                current: 0,
                sessions: crate::SessionSlab::new(),
            },
            IngestConfig {
                // Never flush on its own: the command's flush-first step is
                // the only thing that can label the pre-control events.
                flush: FlushPolicy::new(1_000_000, Duration::from_secs(3600)),
                ..Default::default()
            },
        );
        let handle = door.handle();
        let (before, _sub_b) = handle.open(sd(0, 9), 0.0).unwrap();
        for seg in 0..3u32 {
            handle.submit(before, SegmentId(seg)).unwrap();
        }
        handle
            .control(|engine: &mut Stamp| engine.current = 1)
            .unwrap();
        let (after, _sub_a) = handle.open(sd(1, 8), 0.0).unwrap();
        for seg in 0..2u32 {
            handle.submit(after, SegmentId(seg)).unwrap();
            handle.submit(before, SegmentId(seg)).unwrap();
        }
        // Pre-control sessions keep their stamp for their whole life, even
        // for events submitted after the control; post-control sessions
        // carry the new stamp from their first event.
        assert_eq!(handle.close(before).unwrap().wait().unwrap(), vec![0; 5]);
        assert_eq!(handle.close(after).unwrap().wait().unwrap(), vec![1; 2]);
        let report = door.shutdown();
        assert_eq!(report.stats.flushed_events, 7);
        // The control's flush-first step ran on the shard that had the
        // pending pre-control batch (the close flushes account for the
        // rest).
        assert!(report.stats.flushes >= 2);
        for engine in &report.engines {
            assert_eq!(engine.current, 1, "every shard applied the control");
        }
    }

    #[test]
    fn control_after_shutdown_reports_shutdown() {
        let door = parity_door(1, IngestConfig::default());
        let handle = door.handle();
        door.shutdown();
        assert_eq!(
            handle.control(|_engine: &mut SessionMux<Parity, fn() -> Parity>| {}),
            Err(SubmitError::ShutDown)
        );
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Duration::from_micros(1000));
    }

    /// Parity labels with a poison segment (`u32::MAX`) and full
    /// export/import support — the miniature of a supervised
    /// `StreamEngine` shard for fault tests.
    struct Fragile {
        sessions: crate::SessionSlab<Vec<u8>>,
    }

    impl Fragile {
        fn new() -> Self {
            Fragile {
                sessions: crate::SessionSlab::new(),
            }
        }
    }

    impl SessionEngine for Fragile {
        fn engine_name(&self) -> &'static str {
            "Fragile"
        }
        fn open(&mut self, _sd: SdPair, _start_time: f64) -> SessionId {
            self.sessions.insert(Vec::new())
        }
        fn observe(&mut self, session: SessionId, segment: SegmentId) -> u8 {
            let label = (segment.0 & 1) as u8;
            self.sessions.get_mut(session).push(label);
            label
        }
        fn close(&mut self, session: SessionId) -> Vec<u8> {
            self.sessions.remove(session)
        }
        fn active_sessions(&self) -> usize {
            self.sessions.len()
        }
        fn admit(&self, segment: SegmentId) -> bool {
            segment.0 != u32::MAX
        }
    }

    impl SupervisedEngine for Fragile {
        fn export_sessions(&mut self) -> Vec<(SessionId, Vec<u8>)> {
            self.sessions
                .iter_hot()
                .map(|(id, history)| (id, history.clone()))
                .collect()
        }
        fn import_session(&mut self, blob: &[u8]) -> Option<SessionId> {
            Some(self.sessions.insert(blob.to_vec()))
        }
    }

    fn fragile_door(shards: usize, config: IngestConfig) -> IngestFrontDoor<Fragile> {
        IngestFrontDoor::build_supervised(shards, |_| Fragile::new(), config)
    }

    fn assert_exact_accounting(stats: &IngestStats) {
        assert_eq!(
            stats.submitted,
            stats.flushed_events + stats.shed_events + stats.quarantined_events,
            "delivered + shed + quarantined must equal submitted"
        );
    }

    #[test]
    fn double_close_reports_unknown_session_without_killing_worker() {
        let door = parity_door(1, IngestConfig::default());
        let handle = door.handle();
        let (s, _sub) = handle.open(sd(0, 9), 0.0).unwrap();
        handle.submit(s, SegmentId(3)).unwrap();
        assert_eq!(handle.close(s).unwrap().wait().unwrap(), vec![1]);
        // Second close: an error on the ticket, not a worker panic.
        assert_eq!(
            handle.close(s).unwrap().wait(),
            Err(SessionFault::UnknownSession)
        );
        // The worker survived and keeps serving.
        let (s2, _sub2) = handle.open(sd(1, 8), 0.0).unwrap();
        handle.submit(s2, SegmentId(2)).unwrap();
        assert_eq!(handle.close(s2).unwrap().wait().unwrap(), vec![0]);
        let report = door.shutdown();
        assert_eq!(report.stats.flushed_events, 2);
        assert_exact_accounting(&report.stats);
    }

    #[test]
    fn submit_after_close_is_shed_not_a_panic() {
        let door = parity_door(1, IngestConfig::default());
        let handle = door.handle();
        let (s, _sub) = handle.open(sd(0, 9), 0.0).unwrap();
        handle.submit(s, SegmentId(1)).unwrap();
        handle.close(s).unwrap().wait().unwrap();
        // Stray event for a closed session: accepted, then shed.
        handle.submit(s, SegmentId(2)).unwrap();
        let report = door.shutdown();
        assert_eq!(report.stats.submitted, 2);
        assert_eq!(report.stats.flushed_events, 1);
        assert_eq!(report.stats.shed_events, 1);
        assert_exact_accounting(&report.stats);
    }

    #[test]
    fn poison_event_quarantines_only_its_session() {
        let door = fragile_door(1, IngestConfig::default());
        let handle = door.handle();
        let (a, sub_a) = handle.open(sd(0, 9), 0.0).unwrap();
        let (b, sub_b) = handle.open(sd(1, 8), 0.0).unwrap();
        handle.submit(a, SegmentId(1)).unwrap();
        handle.submit(a, SegmentId(2)).unwrap();
        handle.submit(b, SegmentId(3)).unwrap();
        handle.submit(a, SegmentId(u32::MAX)).unwrap(); // poison
        handle.submit(a, SegmentId(4)).unwrap(); // after the fault: quarantined
        handle.submit(b, SegmentId(5)).unwrap();
        assert_eq!(
            handle.close(a).unwrap().wait(),
            Err(SessionFault::PoisonEvent)
        );
        assert_eq!(handle.close(b).unwrap().wait().unwrap(), vec![1, 1]);
        assert_eq!(sub_a.fault(), Some(SessionFault::PoisonEvent));
        assert_eq!(sub_b.fault(), None);
        // Labels before the poison event were delivered to the stream.
        let mut streamed = Vec::new();
        while let Some(label) = sub_a.recv() {
            streamed.push(label);
        }
        assert_eq!(streamed, vec![1, 0]);
        let report = door.shutdown();
        assert_eq!(report.stats.worker_restarts, 0, "poison needs no restart");
        assert_eq!(report.stats.quarantined_sessions, 1);
        assert_eq!(report.stats.quarantined_events, 2);
        assert_eq!(report.stats.flushed_events, 4);
        assert_exact_accounting(&report.stats);
    }

    #[test]
    fn injected_panic_restarts_worker_and_salvages_sessions() {
        silence_injected_panic_output();
        let door = fragile_door(1, IngestConfig::default());
        let handle = door.handle();
        let (a, _sub_a) = handle.open(sd(0, 9), 0.0).unwrap();
        let (b, _sub_b) = handle.open(sd(1, 8), 0.0).unwrap();
        handle.submit(a, SegmentId(1)).unwrap();
        handle.submit(b, SegmentId(2)).unwrap();
        // Panic at the flush boundary: the pending batch is labelled
        // first, so the salvage is total.
        handle
            .control(|_engine: &mut Fragile| panic!("{}: worker panic", FAULT_INJECTION_MARKER))
            .unwrap();
        handle.submit(a, SegmentId(3)).unwrap();
        handle.submit(b, SegmentId(4)).unwrap();
        assert_eq!(handle.close(a).unwrap().wait().unwrap(), vec![1, 1]);
        assert_eq!(handle.close(b).unwrap().wait().unwrap(), vec![0, 0]);
        assert_eq!(handle.worker_restarts(), 1);
        let report = door.shutdown();
        assert_eq!(report.stats.worker_restarts, 1);
        assert_eq!(
            report.stats.quarantined_sessions, 0,
            "flush-boundary salvage is total"
        );
        assert_eq!(report.stats.flushed_events, 4);
        assert_exact_accounting(&report.stats);
    }

    #[test]
    fn close_ticket_resolves_with_error_when_worker_dies_unsupervised() {
        silence_injected_panic_output();
        let door = parity_door(1, IngestConfig::default());
        let handle = door.handle();
        let (s, _sub) = handle.open(sd(0, 9), 0.0).unwrap();
        handle
            .control(|_engine: &mut SessionMux<Parity, fn() -> Parity>| {
                panic!("{}: unsupervised death", FAULT_INJECTION_MARKER)
            })
            .unwrap();
        // The close races the worker's death: either the push already
        // sees the disconnect, or the ticket resolves with WorkerCrash.
        // Never a hang, never a panic in the caller.
        match handle.close(s) {
            Ok(ticket) => assert_eq!(ticket.wait(), Err(SessionFault::WorkerCrash)),
            Err(err) => assert_eq!(err, SubmitError::ShutDown),
        }
        drop(door); // shutdown() would re-raise the injected panic
    }

    #[test]
    fn retry_policy_backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        for attempt in 0..20 {
            let d1 = policy.backoff(attempt, 7);
            let d2 = policy.backoff(attempt, 7);
            assert_eq!(d1, d2, "same (seed, salt, attempt) → same delay");
            assert!(d1 <= policy.max_backoff, "delay capped at max_backoff");
            assert!(d1 >= policy.base / 2, "delay at least half the base");
        }
        assert_ne!(
            policy.backoff(3, 1),
            policy.backoff(3, 2),
            "different salts de-correlate"
        );
        // run() stops after max_retries + 1 attempts.
        let mut attempts = 0u32;
        let tight = RetryPolicy {
            max_retries: 3,
            base: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let result: Result<(), SubmitError> = tight.run(0, || {
            attempts += 1;
            Err(SubmitError::QueueFull)
        });
        assert_eq!(result, Err(SubmitError::QueueFull));
        assert_eq!(attempts, 4);
        // Non-QueueFull outcomes return immediately.
        let mut calls = 0u32;
        let result: Result<(), SubmitError> = tight.run(0, || {
            calls += 1;
            Err(SubmitError::ShutDown)
        });
        assert_eq!(result, Err(SubmitError::ShutDown));
        assert_eq!(calls, 1);
    }

    #[test]
    fn deadline_submit_gives_up_with_explicit_error() {
        // One-slot queue with the worker wedged in a control command:
        // the first submit is accepted into the queue, later ones stay
        // QueueFull until past the deadline.
        let gate = Arc::new(AtomicBool::new(false));
        let door = parity_door(
            1,
            IngestConfig {
                queue_capacity: 1,
                ..Default::default()
            },
        );
        let handle = door.handle();
        let (s, _sub) = handle.open(sd(0, 9), 0.0).unwrap();
        let hold = Arc::clone(&gate);
        handle
            .control(move |_engine: &mut SessionMux<Parity, fn() -> Parity>| {
                while !hold.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        // Fill the single queue slot, then exhaust a short deadline.
        while handle.submit(s, SegmentId(1)) == Err(SubmitError::QueueFull) {
            std::thread::yield_now();
        }
        let deadline = Instant::now() + Duration::from_millis(5);
        let mut saw_deadline = false;
        loop {
            match handle.submit_with_deadline(s, SegmentId(2), deadline) {
                Err(SubmitError::DeadlineExceeded) => {
                    saw_deadline = true;
                    break;
                }
                Ok(()) => {
                    // The wedged worker still made room in time; extend
                    // the experiment with an already-expired deadline,
                    // which must fail deterministically on a full queue.
                    if Instant::now() >= deadline {
                        break;
                    }
                }
                Err(other) => panic!("unexpected submit error: {other}"),
            }
        }
        gate.store(true, Ordering::SeqCst);
        if saw_deadline {
            assert!(handle.deadline_exceeded_events() >= 1);
        }
        let report = door.shutdown();
        assert_exact_accounting(&report.stats);
    }

    #[test]
    fn degraded_mode_sheds_low_priority_opens() {
        let gate = Arc::new(AtomicBool::new(false));
        let door = parity_door(
            1,
            IngestConfig {
                queue_capacity: 1,
                ..Default::default()
            },
        );
        let handle = door.handle();
        let (s, _sub) = handle.open(sd(0, 9), 0.0).unwrap();
        let hold = Arc::clone(&gate);
        handle
            .control(move |_engine: &mut SessionMux<Parity, fn() -> Parity>| {
                while !hold.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
            })
            .unwrap();
        // Wedge the queue full, then reject past the watermark.
        while handle.submit(s, SegmentId(1)) == Err(SubmitError::QueueFull) {
            std::thread::yield_now();
        }
        let mut rejects = 0u64;
        while rejects < DEGRADED_WATERMARK + 8 {
            if handle.submit(s, SegmentId(1)) == Err(SubmitError::QueueFull) {
                rejects += 1;
            }
        }
        assert!(handle.is_degraded(0), "watermark crossed → degraded");
        assert_eq!(
            handle
                .open_with_priority(sd(1, 8), 0.0, Priority::Low)
                .map(|_| ())
                .unwrap_err(),
            SubmitError::Degraded,
            "low-priority opens shed while degraded"
        );
        assert_eq!(handle.shed_opens(), 1);
        // Recovery: un-wedge the worker; the next accepted submit lifts
        // the degradation and low-priority opens are admitted again.
        gate.store(true, Ordering::SeqCst);
        while handle.submit(s, SegmentId(1)) == Err(SubmitError::QueueFull) {
            std::thread::yield_now();
        }
        assert!(!handle.is_degraded(0), "accepted submit lifts degradation");
        let reopened = handle.open_with_priority(sd(2, 7), 0.0, Priority::Low);
        assert!(reopened.is_ok());
        let report = door.shutdown();
        assert_exact_accounting(&report.stats);
    }
}
