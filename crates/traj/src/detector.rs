//! The detector interface shared by RL4OASD and every baseline.
//!
//! The OASD problem (paper Problem 1): given an ongoing trajectory whose
//! road segments arrive one by one, decide *which parts* are anomalous.
//! Detectors therefore expose a streaming API — [`OnlineDetector::begin`]
//! opens a trajectory, [`OnlineDetector::observe`] consumes one segment and
//! returns the label assigned so far, and [`OnlineDetector::finish`] closes
//! the trajectory returning the final per-segment labels (detectors with
//! delayed decisions, e.g. RL4OASD's Delayed Labeling, may revise labels of
//! recently seen segments at `finish`/later `observe` calls).
//!
//! A convenience [`OnlineDetector::label_trajectory`] drives the streaming
//! API over a complete trajectory; the evaluation harness uses it, while the
//! per-point efficiency benchmarks (paper Fig. 3) time `observe` itself.

use crate::types::{MappedTrajectory, SdPair};
use rnet::SegmentId;

/// A detector that labels the road segments of an ongoing trajectory as
/// normal (0) or anomalous (1) in an online fashion.
///
/// Per the paper's problem statement (Problem 1), the trip's source and
/// destination are known when it starts (a ride-hailing trip declares its
/// destination), so [`OnlineDetector::begin`] receives the [`SdPair`]:
/// normality is defined *relative to the other trajectories of that pair*.
pub trait OnlineDetector {
    /// Short method name as used in the paper's tables (e.g. `"RL4OASD"`).
    fn name(&self) -> &'static str;

    /// Starts a new ongoing trajectory for the given SD pair and start time
    /// (seconds since midnight). Any previous trajectory state is discarded.
    fn begin(&mut self, sd: SdPair, start_time: f64);

    /// Consumes the next road segment of the ongoing trajectory and returns
    /// the provisional label (0 normal / 1 anomalous) for it.
    fn observe(&mut self, segment: SegmentId) -> u8;

    /// Ends the ongoing trajectory and returns the final labels for all
    /// observed segments (length = number of `observe` calls since `begin`).
    /// Detectors with delayed decisions (e.g. RL4OASD's Delayed Labeling)
    /// may revise recent provisional labels here.
    fn finish(&mut self) -> Vec<u8>;

    /// Labels a complete trajectory by streaming it through the detector.
    /// Empty trajectories yield empty label vectors.
    fn label_trajectory(&mut self, traj: &MappedTrajectory) -> Vec<u8> {
        let Some(sd) = traj.sd_pair() else {
            return Vec::new();
        };
        self.begin(sd, traj.start_time);
        for &seg in &traj.segments {
            self.observe(seg);
        }
        self.finish()
    }
}

impl<D: OnlineDetector + ?Sized> OnlineDetector for Box<D> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn begin(&mut self, sd: SdPair, start_time: f64) {
        (**self).begin(sd, start_time)
    }
    fn observe(&mut self, segment: SegmentId) -> u8 {
        (**self).observe(segment)
    }
    fn finish(&mut self) -> Vec<u8> {
        (**self).finish()
    }
}

/// A trivial detector that labels everything normal. Useful as a sanity
/// floor in evaluations and tests.
#[derive(Debug, Default, Clone)]
pub struct AlwaysNormal {
    n: usize,
}

impl OnlineDetector for AlwaysNormal {
    fn name(&self) -> &'static str {
        "AlwaysNormal"
    }

    fn begin(&mut self, _sd: SdPair, _start_time: f64) {
        self.n = 0;
    }

    fn observe(&mut self, _segment: SegmentId) -> u8 {
        self.n += 1;
        0
    }

    fn finish(&mut self) -> Vec<u8> {
        vec![0; std::mem::take(&mut self.n)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TrajectoryId;

    #[test]
    fn always_normal_labels_all_zero() {
        let t = MappedTrajectory {
            id: TrajectoryId(0),
            segments: vec![SegmentId(0), SegmentId(1), SegmentId(2)],
            start_time: 0.0,
        };
        let mut d = AlwaysNormal::default();
        assert_eq!(d.label_trajectory(&t), vec![0, 0, 0]);
        // reusable across trajectories
        assert_eq!(d.label_trajectory(&t), vec![0, 0, 0]);
    }

    #[test]
    fn begin_resets_state() {
        let sd = SdPair {
            source: SegmentId(0),
            dest: SegmentId(2),
        };
        let mut d = AlwaysNormal::default();
        d.begin(sd, 0.0);
        d.observe(SegmentId(0));
        d.begin(sd, 0.0);
        assert_eq!(d.finish().len(), 0);
    }

    #[test]
    fn empty_trajectory_yields_empty_labels() {
        let mut d = AlwaysNormal::default();
        let t = MappedTrajectory::default();
        assert!(d.label_trajectory(&t).is_empty());
    }
}
