//! Dataset container: trajectories, ground truth, SD-pair grouping and
//! Table II-style statistics.

use crate::generator::GeneratedTraffic;
use crate::types::{MappedTrajectory, SdPair, TrajectoryId, HOURS_PER_DAY};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A trajectory corpus with optional ground-truth labels.
///
/// Mirrors the paper's experimental setup: all trajectories are grouped by
/// SD pair (and, during preprocessing, by time slot); a labelled subset
/// serves as the test set. Built from a [`GeneratedTraffic`] run or
/// assembled manually. Serialization stores trajectories and ground truth
/// only; the SD-pair index is rebuilt on deserialization.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
#[serde(from = "DatasetData", into = "DatasetData")]
pub struct Dataset {
    /// All map-matched trajectories, indexed by [`TrajectoryId`].
    pub trajectories: Vec<MappedTrajectory>,
    /// Ground-truth labels; `None` for unlabelled trajectories.
    pub ground_truth: Vec<Option<Vec<u8>>>,
    /// Trajectory ids per SD pair.
    pub by_pair: HashMap<SdPair, Vec<TrajectoryId>>,
}

impl Dataset {
    /// Builds a dataset from simulator output, keeping all ground truth.
    pub fn from_generated(data: &GeneratedTraffic) -> Self {
        let mut ds = Dataset {
            trajectories: data.trajectories.clone(),
            ground_truth: data.ground_truth.iter().cloned().map(Some).collect(),
            by_pair: HashMap::new(),
        };
        ds.rebuild_index();
        ds
    }

    /// Rebuilds [`Dataset::by_pair`] from the trajectory list.
    pub fn rebuild_index(&mut self) {
        self.by_pair.clear();
        for t in &self.trajectories {
            if let Some(sd) = t.sd_pair() {
                self.by_pair.entry(sd).or_default().push(t.id);
            }
        }
    }

    /// Number of trajectories.
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// The trajectory with the given id.
    pub fn get(&self, id: TrajectoryId) -> &MappedTrajectory {
        &self.trajectories[id.idx()]
    }

    /// Ground truth of the given trajectory, if labelled.
    pub fn truth(&self, id: TrajectoryId) -> Option<&[u8]> {
        self.ground_truth[id.idx()].as_deref()
    }

    /// Ids of all labelled trajectories.
    pub fn labelled_ids(&self) -> Vec<TrajectoryId> {
        self.ground_truth
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|_| TrajectoryId(i as u32)))
            .collect()
    }

    /// Trajectories of an SD pair (empty slice semantics via `Vec`).
    pub fn pair_trajectories(&self, pair: SdPair) -> &[TrajectoryId] {
        self.by_pair.get(&pair).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Groups the trajectories of `pair` by one-hour time slot. Slot groups
    /// are the unit of the paper's preprocessing (§IV-B Step 1).
    pub fn pair_slot_groups(&self, pair: SdPair) -> Vec<Vec<TrajectoryId>> {
        let mut groups = vec![Vec::new(); HOURS_PER_DAY];
        for &id in self.pair_trajectories(pair) {
            groups[self.get(id).time_slot()].push(id);
        }
        groups
    }

    /// Drops SD pairs with fewer than `min` trajectories (paper §V-A:
    /// "filter those SD-pairs that contain less than 25 trajectories").
    /// Returns the number of trajectories removed. Ids are re-assigned.
    pub fn filter_sparse_pairs(&mut self, min: usize) -> usize {
        let keep_pairs: std::collections::HashSet<SdPair> = self
            .by_pair
            .iter()
            .filter(|(_, v)| v.len() >= min)
            .map(|(k, _)| *k)
            .collect();
        let before = self.trajectories.len();
        let mut new_trajs = Vec::new();
        let mut new_truth = Vec::new();
        for (t, g) in self.trajectories.iter().zip(&self.ground_truth) {
            if t.sd_pair().map(|sd| keep_pairs.contains(&sd)) == Some(true) {
                let mut t = t.clone();
                t.id = TrajectoryId(new_trajs.len() as u32);
                new_trajs.push(t);
                new_truth.push(g.clone());
            }
        }
        self.trajectories = new_trajs;
        self.ground_truth = new_truth;
        self.rebuild_index();
        before - self.trajectories.len()
    }

    /// Splits into (train, test): `test_per_pair` labelled trajectories per
    /// SD pair go to the test set (ground truth retained), the rest to the
    /// train set (ground truth stripped — training is label-free, §IV).
    pub fn split(&self, test_per_pair: usize) -> (Dataset, Dataset) {
        let mut train = Dataset::default();
        let mut test = Dataset::default();
        for ids in self.by_pair.values() {
            for (k, &id) in ids.iter().enumerate() {
                let t = self.get(id).clone();
                if k < test_per_pair {
                    let mut t = t;
                    t.id = TrajectoryId(test.trajectories.len() as u32);
                    test.ground_truth.push(self.ground_truth[id.idx()].clone());
                    test.trajectories.push(t);
                } else {
                    let mut t = t;
                    t.id = TrajectoryId(train.trajectories.len() as u32);
                    train.ground_truth.push(None);
                    train.trajectories.push(t);
                }
            }
        }
        train.rebuild_index();
        test.rebuild_index();
        (train, test)
    }

    /// Returns a copy keeping only trajectories satisfying `keep`.
    /// Ids are re-assigned densely; ground truth follows its trajectory.
    pub fn filter<F: Fn(&MappedTrajectory) -> bool>(&self, keep: F) -> Dataset {
        let mut out = Dataset::default();
        for (t, g) in self.trajectories.iter().zip(&self.ground_truth) {
            if keep(t) {
                let mut t = t.clone();
                t.id = TrajectoryId(out.trajectories.len() as u32);
                out.trajectories.push(t);
                out.ground_truth.push(g.clone());
            }
        }
        out.rebuild_index();
        out
    }

    /// Randomly drops `rate` of each SD pair's trajectories (the paper's
    /// cold-start experiment, Table VI). At least one trajectory per pair
    /// survives. Deterministic in `seed`.
    pub fn drop_per_pair(&self, rate: f64, seed: u64) -> Dataset {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        assert!((0.0..1.0).contains(&rate) || rate == 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut keep: std::collections::HashSet<TrajectoryId> = std::collections::HashSet::new();
        for ids in self.by_pair.values() {
            let mut ids = ids.clone();
            ids.shuffle(&mut rng);
            let n = (((ids.len() as f64) * (1.0 - rate)).ceil() as usize).max(1);
            keep.extend(ids.into_iter().take(n));
        }
        self.filter(|t| keep.contains(&t.id))
    }

    /// Table II-style statistics.
    pub fn stats(&self) -> DatasetStats {
        let mut routes: HashMap<&[rnet::SegmentId], bool> = HashMap::new();
        let mut anomalous_trajs = 0usize;
        for (t, g) in self.trajectories.iter().zip(&self.ground_truth) {
            let anom = g.as_ref().map(|g| g.contains(&1)).unwrap_or(false);
            anomalous_trajs += usize::from(anom);
            let e = routes.entry(t.segments.as_slice()).or_insert(false);
            *e = *e || anom;
        }
        let anomalous_routes = routes.values().filter(|&&a| a).count();
        DatasetStats {
            num_trajectories: self.trajectories.len(),
            num_routes: routes.len(),
            num_anomalous_routes: anomalous_routes,
            num_anomalous_trajectories: anomalous_trajs,
            anomaly_ratio: if self.trajectories.is_empty() {
                0.0
            } else {
                anomalous_trajs as f64 / self.trajectories.len() as f64
            },
            num_sd_pairs: self.by_pair.len(),
        }
    }
}

/// Serialized form of [`Dataset`] (index omitted).
#[derive(Serialize, Deserialize)]
struct DatasetData {
    trajectories: Vec<MappedTrajectory>,
    ground_truth: Vec<Option<Vec<u8>>>,
}

impl From<DatasetData> for Dataset {
    fn from(d: DatasetData) -> Self {
        let mut ds = Dataset {
            trajectories: d.trajectories,
            ground_truth: d.ground_truth,
            by_pair: HashMap::new(),
        };
        ds.rebuild_index();
        ds
    }
}

impl From<Dataset> for DatasetData {
    fn from(ds: Dataset) -> Self {
        DatasetData {
            trajectories: ds.trajectories,
            ground_truth: ds.ground_truth,
        }
    }
}

/// Summary statistics in the shape of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Total trajectories.
    pub num_trajectories: usize,
    /// Distinct routes (unique segment sequences).
    pub num_routes: usize,
    /// Distinct routes containing an anomaly.
    pub num_anomalous_routes: usize,
    /// Trajectories containing an anomaly.
    pub num_anomalous_trajectories: usize,
    /// Fraction of anomalous trajectories.
    pub anomaly_ratio: f64,
    /// Number of SD pairs.
    pub num_sd_pairs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TrafficConfig, TrafficSimulator};
    use rnet::{CityBuilder, CityConfig};

    fn dataset(seed: u64) -> Dataset {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let data = TrafficSimulator::new(&net, TrafficConfig::tiny(seed)).generate();
        Dataset::from_generated(&data)
    }

    #[test]
    fn index_covers_all_trajectories() {
        let ds = dataset(1);
        let total: usize = ds.by_pair.values().map(|v| v.len()).sum();
        assert_eq!(total, ds.len());
        for (pair, ids) in &ds.by_pair {
            for &id in ids {
                assert_eq!(ds.get(id).sd_pair().unwrap(), *pair);
            }
        }
    }

    #[test]
    fn stats_consistent() {
        let ds = dataset(2);
        let st = ds.stats();
        assert_eq!(st.num_trajectories, ds.len());
        assert!(st.num_routes <= st.num_trajectories);
        assert!(st.num_anomalous_routes <= st.num_routes);
        assert!(st.anomaly_ratio > 0.0 && st.anomaly_ratio < 1.0);
        assert_eq!(st.num_sd_pairs, 4);
    }

    #[test]
    fn split_keeps_truth_only_in_test() {
        let ds = dataset(3);
        let (train, test) = ds.split(5);
        assert_eq!(train.len() + test.len(), ds.len());
        assert!(train.ground_truth.iter().all(|g| g.is_none()));
        assert!(test.ground_truth.iter().all(|g| g.is_some()));
        assert_eq!(test.len(), 5 * ds.by_pair.len());
        // ids are re-assigned densely
        for (i, t) in train.trajectories.iter().enumerate() {
            assert_eq!(t.id.idx(), i);
        }
    }

    #[test]
    fn filter_sparse_pairs_removes_small_groups() {
        let mut ds = dataset(4);
        // every pair has >= 20 trajectories, so min=10 removes nothing
        assert_eq!(ds.filter_sparse_pairs(10), 0);
        let n = ds.len();
        // absurd min removes everything
        let removed = ds.filter_sparse_pairs(100_000);
        assert_eq!(removed, n);
        assert!(ds.is_empty());
    }

    #[test]
    fn slot_groups_partition_pair() {
        let ds = dataset(5);
        let (&pair, ids) = ds.by_pair.iter().next().unwrap();
        let groups = ds.pair_slot_groups(pair);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, ids.len());
        for (slot, group) in groups.iter().enumerate() {
            for &id in group {
                assert_eq!(ds.get(id).time_slot(), slot);
            }
        }
    }

    #[test]
    fn filter_reindexes_densely() {
        let ds = dataset(7);
        let kept = ds.filter(|t| t.len() >= 8);
        assert!(kept.len() <= ds.len());
        for (i, t) in kept.trajectories.iter().enumerate() {
            assert_eq!(t.id.idx(), i);
            assert!(t.len() >= 8);
        }
        // truth stays aligned
        for t in &kept.trajectories {
            assert_eq!(kept.truth(t.id).map(|g| g.len()), Some(t.len()));
        }
    }

    #[test]
    fn drop_per_pair_respects_rate() {
        let ds = dataset(8);
        let dropped = ds.drop_per_pair(0.5, 1);
        for (pair, ids) in &ds.by_pair {
            let kept = dropped.by_pair.get(pair).map(|v| v.len()).unwrap_or(0);
            let expect = ((ids.len() as f64) * 0.5).ceil() as usize;
            assert_eq!(kept, expect.max(1));
        }
        // rate 0 is identity in size
        assert_eq!(ds.drop_per_pair(0.0, 1).len(), ds.len());
        // deterministic
        let a = ds.drop_per_pair(0.3, 9);
        let b = ds.drop_per_pair(0.3, 9);
        assert_eq!(a.trajectories, b.trajectories);
    }

    #[test]
    fn labelled_ids_match_truth() {
        let mut ds = dataset(6);
        ds.ground_truth[0] = None;
        let ids = ds.labelled_ids();
        assert_eq!(ids.len(), ds.len() - 1);
        assert!(!ids.contains(&TrajectoryId(0)));
    }
}
