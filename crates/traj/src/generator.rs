//! Traffic simulator: the reproduction's substitute for the DiDi
//! Chengdu/Xi'an trajectory corpora.
//!
//! The paper's detection signal is *relative route popularity within an SD
//! pair and time slot*: a trajectory is anomalous where it deviates from the
//! routes the majority takes. The simulator reproduces that structure
//! directly:
//!
//! 1. For every SD pair it builds a **route family**: one or two popular
//!    *normal routes* (shortest path plus a weight-perturbed alternative)
//!    and a few *detour routes*, each produced by splicing an alternative
//!    sub-path — disjoint from every normal route's segments — into a normal
//!    route.
//! 2. Trajectories are sampled from the family: with probability
//!    `anomaly_ratio` a detour, otherwise a normal route by popularity.
//!    Start times follow a peaked time-of-day distribution (so one-hour time
//!    slots have realistic occupancy, matching the paper's grouping step).
//! 3. Because the detour segments are disjoint from the normal segments by
//!    construction, exact **ground-truth labels** fall out: a segment is
//!    anomalous iff it is not on any normal route of the trajectory's
//!    regime. This replaces the paper's manual labelling with a noiseless
//!    oracle.
//! 4. **Concept drift** (paper §V-G, Fig. 6–7): with [`DriftConfig`], each
//!    pair has exactly one normal and one detour route, and after
//!    `swap_time` their roles exchange — what was anomalous becomes the
//!    popular route and vice versa. Ground truth follows the regime.
//!
//! Raw GPS emission (2–4 s sampling, Gaussian noise) is optional and feeds
//! the map-matching experiments (paper Table V).

use crate::types::{GpsPoint, MappedTrajectory, RawTrajectory, SdPair, TrajectoryId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnet::path::shortest_path_weighted;
use rnet::{geo, Point, RoadNetwork, SegmentId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Kind of a route within an SD pair's route family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteKind {
    /// A popular route followed by the majority of trajectories.
    Normal,
    /// A rare detour deviating from the normal routes.
    Detour,
}

/// One route of an SD pair's family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Route {
    /// Segment sequence from the SD source segment to the destination
    /// segment.
    pub segments: Vec<SegmentId>,
    /// Whether the route is normal or a detour *in regime 0*. Under drift
    /// the roles swap in regime 1.
    pub kind: RouteKind,
    /// Index range (positions in `segments`) of the spliced detour span;
    /// `None` for normal routes.
    pub detour_span: Option<(usize, usize)>,
}

/// The route family and bookkeeping for one SD pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SdPairData {
    /// The pair (source segment, destination segment).
    pub pair: SdPair,
    /// Route family; normal routes first, then detours.
    pub routes: Vec<Route>,
    /// Popularity of each *normal* route (sums to 1 over normal routes).
    pub normal_popularity: Vec<f64>,
}

impl SdPairData {
    /// Indices of routes that are normal in the given regime (0 before the
    /// drift swap, 1 after). Without drift, regime is always 0.
    pub fn normal_route_indices(&self, regime: usize) -> Vec<usize> {
        let normals: Vec<usize> = self
            .routes
            .iter()
            .enumerate()
            .filter(|(_, r)| r.kind == RouteKind::Normal)
            .map(|(i, _)| i)
            .collect();
        if regime == 0 {
            normals
        } else {
            // Drift regime: the first detour is promoted, the most popular
            // normal route is demoted.
            let detours: Vec<usize> = self
                .routes
                .iter()
                .enumerate()
                .filter(|(_, r)| r.kind == RouteKind::Detour)
                .map(|(i, _)| i)
                .collect();
            match (normals.split_first(), detours.first()) {
                (Some((_, rest)), Some(&d)) => {
                    let mut v = vec![d];
                    v.extend_from_slice(rest);
                    v
                }
                _ => normals,
            }
        }
    }

    /// The set of segments on normal routes of the given regime.
    pub fn normal_segment_set(&self, regime: usize) -> HashSet<SegmentId> {
        let mut set = HashSet::new();
        for i in self.normal_route_indices(regime) {
            set.extend(self.routes[i].segments.iter().copied());
        }
        set
    }
}

/// Concept-drift configuration (paper §V-G).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Seconds since midnight after which route roles swap (regime 1).
    pub swap_time: f64,
}

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Number of SD pairs to generate.
    pub num_sd_pairs: usize,
    /// Inclusive range of trajectories per SD pair (paper filters pairs
    /// with < 25 trajectories; labelled pairs have ≥ 30).
    pub trajs_per_pair: (usize, usize),
    /// Probability that a trajectory follows a detour route.
    pub anomaly_ratio: f64,
    /// Normal routes per pair (clamped to 1–3; forced to 1 under drift).
    pub num_normal_routes: usize,
    /// Detour routes per pair (clamped to 1–4; forced to 1 under drift).
    pub num_detour_routes: usize,
    /// Minimum route length in segments.
    pub min_route_len: usize,
    /// Maximum route length in segments.
    pub max_route_len: usize,
    /// Standard deviation of GPS noise, metres.
    pub gps_noise_std: f64,
    /// GPS sampling interval range, seconds (paper Table II: 2–4 s).
    pub gps_interval: (f64, f64),
    /// Whether to emit raw GPS trajectories (needed for map-matching
    /// experiments; costly for large datasets).
    pub generate_raw: bool,
    /// Optional concept drift.
    pub drift: Option<DriftConfig>,
    /// Draw start times uniformly over the day instead of the peaked
    /// commute distribution. The drift experiments (paper §V-G) partition
    /// the day into ξ parts and need every part populated.
    pub uniform_start_times: bool,
    /// RNG seed; equal configs generate identical data on the same network.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            num_sd_pairs: 50,
            trajs_per_pair: (60, 160),
            anomaly_ratio: 0.05,
            num_normal_routes: 2,
            num_detour_routes: 2,
            min_route_len: 8,
            max_route_len: 60,
            gps_noise_std: 8.0,
            gps_interval: (2.0, 4.0),
            generate_raw: false,
            drift: None,
            uniform_start_times: false,
            seed: 0x0A5D,
        }
    }
}

impl TrafficConfig {
    /// Small config for unit tests.
    pub fn tiny(seed: u64) -> Self {
        TrafficConfig {
            num_sd_pairs: 4,
            trajs_per_pair: (20, 30),
            anomaly_ratio: 0.15,
            min_route_len: 5,
            max_route_len: 25,
            seed,
            ..Default::default()
        }
    }
}

/// Output of a simulation run: trajectories aligned with ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratedTraffic {
    /// Per-pair route families.
    pub pairs: Vec<SdPairData>,
    /// Map-matched trajectories (the simulator's native output).
    pub trajectories: Vec<MappedTrajectory>,
    /// Ground-truth labels aligned with `trajectories`.
    pub ground_truth: Vec<Vec<u8>>,
    /// Pair index of each trajectory.
    pub pair_of: Vec<usize>,
    /// Route index (within the pair's family) of each trajectory.
    pub route_of: Vec<usize>,
    /// Raw GPS trajectories aligned with `trajectories` (empty when
    /// `generate_raw` is off).
    pub raw: Vec<RawTrajectory>,
}

/// Builds route families and samples trajectories on a road network.
pub struct TrafficSimulator<'a> {
    net: &'a RoadNetwork,
    config: TrafficConfig,
}

impl<'a> TrafficSimulator<'a> {
    /// Creates a simulator over `net` with the given config.
    ///
    /// # Panics
    /// Panics on nonsensical configs (empty ranges, ratios outside [0, 1]).
    pub fn new(net: &'a RoadNetwork, mut config: TrafficConfig) -> Self {
        assert!(config.num_sd_pairs > 0);
        assert!(config.trajs_per_pair.0 >= 1 && config.trajs_per_pair.0 <= config.trajs_per_pair.1);
        assert!((0.0..=1.0).contains(&config.anomaly_ratio));
        assert!(config.min_route_len >= 3 && config.min_route_len <= config.max_route_len);
        config.num_normal_routes = config.num_normal_routes.clamp(1, 3);
        config.num_detour_routes = config.num_detour_routes.clamp(1, 4);
        if config.drift.is_some() {
            // Drift experiments use a clean 1 normal + 1 detour family so
            // that the regime swap is exact (see module docs).
            config.num_normal_routes = 1;
            config.num_detour_routes = 1;
        }
        TrafficSimulator { net, config }
    }

    /// The effective configuration (after clamping).
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Runs the simulation.
    pub fn generate(&self) -> GeneratedTraffic {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let pairs = self.build_pairs(&mut rng);

        let mut trajectories = Vec::new();
        let mut ground_truth = Vec::new();
        let mut pair_of = Vec::new();
        let mut route_of = Vec::new();
        let mut raw = Vec::new();
        for (pi, pair) in pairs.iter().enumerate() {
            let n = rng.gen_range(self.config.trajs_per_pair.0..=self.config.trajs_per_pair.1);
            for _ in 0..n {
                let start_time = self.sample_start_time(&mut rng);
                let regime = self.regime_of(start_time);
                let ri = self.sample_route(pair, regime, &mut rng);
                let route = &pair.routes[ri];
                let id = TrajectoryId(trajectories.len() as u32);
                let traj = MappedTrajectory {
                    id,
                    segments: route.segments.clone(),
                    start_time,
                };
                let gt = self.ground_truth_for(pair, ri, regime);
                if self.config.generate_raw {
                    raw.push(self.emit_gps(&traj, &mut rng));
                }
                trajectories.push(traj);
                ground_truth.push(gt);
                pair_of.push(pi);
                route_of.push(ri);
            }
        }
        GeneratedTraffic {
            pairs,
            trajectories,
            ground_truth,
            pair_of,
            route_of,
            raw,
        }
    }

    /// Builds just the per-pair **route families** — exactly the pairs
    /// [`TrafficSimulator::generate`] would build (same seed, same RNG
    /// draws), without sampling any trajectories. The scenario engine uses
    /// this to own route families and derive its event traces as a pure
    /// function of a `(seed, spec)` pair.
    pub fn build_route_families(&self) -> Vec<SdPairData> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.build_pairs(&mut rng)
    }

    fn build_pairs(&self, rng: &mut StdRng) -> Vec<SdPairData> {
        let mut pairs = Vec::with_capacity(self.config.num_sd_pairs);
        let mut attempts = 0usize;
        while pairs.len() < self.config.num_sd_pairs {
            attempts += 1;
            assert!(
                attempts < self.config.num_sd_pairs * 200,
                "could not build enough SD pairs; network too small for the requested route lengths"
            );
            if let Some(p) = self.build_pair(rng) {
                pairs.push(p);
            }
        }
        pairs
    }

    /// Generates additional trajectories from *existing* route families —
    /// used to build labelled test sets that share SD pairs with the
    /// training corpus but have a different anomaly mix, mirroring the
    /// paper's labelled evaluation sets (where most labelled *routes* are
    /// anomalous while the raw corpus is ~99% normal).
    pub fn generate_from_pairs(
        &self,
        pairs: &[SdPairData],
        trajs_per_pair: (usize, usize),
        anomaly_ratio: f64,
        seed: u64,
    ) -> GeneratedTraffic {
        assert!((0.0..=1.0).contains(&anomaly_ratio));
        assert!(trajs_per_pair.0 >= 1 && trajs_per_pair.0 <= trajs_per_pair.1);
        let mut rng = StdRng::seed_from_u64(seed);
        let override_cfg = TrafficConfig {
            anomaly_ratio,
            trajs_per_pair,
            ..self.config.clone()
        };
        let sim = TrafficSimulator {
            net: self.net,
            config: override_cfg,
        };
        let mut out = GeneratedTraffic {
            pairs: pairs.to_vec(),
            trajectories: Vec::new(),
            ground_truth: Vec::new(),
            pair_of: Vec::new(),
            route_of: Vec::new(),
            raw: Vec::new(),
        };
        for (pi, pair) in pairs.iter().enumerate() {
            let n = rng.gen_range(trajs_per_pair.0..=trajs_per_pair.1);
            for _ in 0..n {
                let start_time = sim.sample_start_time(&mut rng);
                let regime = sim.regime_of(start_time);
                let ri = sim.sample_route(pair, regime, &mut rng);
                let id = TrajectoryId(out.trajectories.len() as u32);
                let traj = MappedTrajectory {
                    id,
                    segments: pair.routes[ri].segments.clone(),
                    start_time,
                };
                if sim.config.generate_raw {
                    out.raw.push(sim.emit_gps(&traj, &mut rng));
                }
                out.ground_truth
                    .push(sim.ground_truth_for(pair, ri, regime));
                out.trajectories.push(traj);
                out.pair_of.push(pi);
                out.route_of.push(ri);
            }
        }
        out
    }

    /// Regime of a start time: 0 before the drift swap (or always without
    /// drift), 1 after.
    pub fn regime_of(&self, start_time: f64) -> usize {
        match self.config.drift {
            Some(d) if start_time >= d.swap_time => 1,
            _ => 0,
        }
    }

    fn sample_start_time(&self, rng: &mut StdRng) -> f64 {
        if self.config.uniform_start_times {
            return rng.gen_range(0.0..crate::types::SECONDS_PER_DAY);
        }
        // Mixture: 45% morning peak, 35% evening peak, 20% uniform day.
        let u: f64 = rng.gen();
        let t: f64 = if u < 0.45 {
            rng.gen_range(7.0..10.0) * 3600.0 + rng.gen_range(0.0..3600.0) - 1800.0
        } else if u < 0.80 {
            rng.gen_range(17.0..20.0) * 3600.0 + rng.gen_range(0.0..3600.0) - 1800.0
        } else {
            rng.gen_range(0.0..24.0) * 3600.0
        };
        t.rem_euclid(crate::types::SECONDS_PER_DAY)
    }

    fn sample_route(&self, pair: &SdPairData, regime: usize, rng: &mut StdRng) -> usize {
        let normals = pair.normal_route_indices(regime);
        let all: Vec<usize> = (0..pair.routes.len()).collect();
        let anomalous: Vec<usize> = all
            .iter()
            .copied()
            .filter(|i| !normals.contains(i))
            .collect();
        if !anomalous.is_empty() && rng.gen::<f64>() < self.config.anomaly_ratio {
            anomalous[rng.gen_range(0..anomalous.len())]
        } else {
            // Popularity-weighted choice among regime-normal routes. The
            // stored popularity vector indexes regime-0 normals; reuse its
            // weights positionally for whichever routes are normal now.
            let w = &pair.normal_popularity;
            let total: f64 = w.iter().take(normals.len()).sum();
            let mut x = rng.gen::<f64>() * total;
            for (k, &ri) in normals.iter().enumerate() {
                let wk = w.get(k).copied().unwrap_or(1e-9);
                if x < wk {
                    return ri;
                }
                x -= wk;
            }
            *normals.last().expect("at least one normal route")
        }
    }

    /// Ground-truth labels for route `ri` of `pair` in `regime`: a segment
    /// is anomalous iff it is not on any regime-normal route. Endpoints are
    /// always normal by definition (they belong to every route).
    fn ground_truth_for(&self, pair: &SdPairData, ri: usize, regime: usize) -> Vec<u8> {
        let normal_set = pair.normal_segment_set(regime);
        let route = &pair.routes[ri];
        route
            .segments
            .iter()
            .map(|s| u8::from(!normal_set.contains(s)))
            .collect()
    }

    // ---- route family construction ------------------------------------

    fn build_pair(&self, rng: &mut StdRng) -> Option<SdPairData> {
        let net = self.net;
        let n = net.num_nodes() as u32;
        let s = rnet::NodeId(rng.gen_range(0..n));
        let d = rnet::NodeId(rng.gen_range(0..n));
        if s == d {
            return None;
        }
        let base = rnet::shortest_path(net, s, d)?;
        if base.segments.len() < self.config.min_route_len
            || base.segments.len() > self.config.max_route_len
        {
            return None;
        }

        // Normal routes: the shortest path plus weight-perturbed variants
        // that share the first and last segment.
        let first = base.segments[0];
        let last = *base.segments.last().unwrap();
        let mut normals: Vec<Vec<SegmentId>> = vec![base.segments.clone()];
        let mut tries = 0;
        while normals.len() < self.config.num_normal_routes && tries < 12 {
            tries += 1;
            if let Some(alt) = self.perturbed_route(first, last, rng) {
                if alt.len() <= self.config.max_route_len
                    && !normals.contains(&alt)
                    && has_unique_elements(&alt)
                {
                    normals.push(alt);
                }
            }
        }

        // Detours: splice an alternative sub-path (disjoint from every
        // normal segment) into the most popular normal route.
        let normal_set: HashSet<SegmentId> = normals.iter().flatten().copied().collect();
        let mut detours: Vec<Route> = Vec::new();
        let mut tries = 0;
        while detours.len() < self.config.num_detour_routes && tries < 24 {
            tries += 1;
            let base_route = &normals[rng.gen_range(0..normals.len())];
            if let Some(r) = self.splice_detour(base_route, &normal_set, rng) {
                if detours.iter().all(|d| d.segments != r.segments) {
                    detours.push(r);
                }
            }
        }
        if detours.is_empty() {
            return None; // pair unusable for anomaly experiments
        }

        // Popularity: a clearly dominant first route and a substantial
        // second route. The split mirrors the paper's Fig. 1 example
        // (0.5 / 0.4 / 0.1): the dominant route's transition fractions
        // stay above the noisy-label threshold α while alternatives sit
        // between δ and α — the regime the preprocessing heuristics are
        // designed around.
        let normal_popularity: Vec<f64> = match normals.len() {
            1 => vec![1.0],
            2 => {
                let p0 = rng.gen_range(0.60..0.68);
                vec![p0, 1.0 - p0]
            }
            _ => {
                let p0 = rng.gen_range(0.47..0.53);
                let p1 = rng.gen_range(0.28..0.32);
                vec![p0, p1, 1.0 - p0 - p1]
            }
        };

        let mut routes: Vec<Route> = normals
            .into_iter()
            .map(|segments| Route {
                segments,
                kind: RouteKind::Normal,
                detour_span: None,
            })
            .collect();
        routes.extend(detours);

        Some(SdPairData {
            pair: SdPair {
                source: first,
                dest: last,
            },
            routes,
            normal_popularity,
        })
    }

    /// A route from `first` to `last` under exponentially perturbed weights.
    fn perturbed_route(
        &self,
        first: SegmentId,
        last: SegmentId,
        rng: &mut StdRng,
    ) -> Option<Vec<SegmentId>> {
        let net = self.net;
        // Per-call jitter factors, hashed from segment id for O(1) memory.
        let salt: u64 = rng.gen();
        let weight = move |s: SegmentId| {
            let h = splitmix64(salt ^ (s.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
            net.segment(s).length * (0.6 + 1.2 * u)
        };
        let mid =
            shortest_path_weighted(net, net.segment(first).to, net.segment(last).from, weight)?;
        let mut segs = Vec::with_capacity(mid.segments.len() + 2);
        segs.push(first);
        segs.extend(mid.segments);
        segs.push(last);
        Some(segs)
    }

    /// Splices a detour into `base`, avoiding every segment in `normal_set`.
    fn splice_detour(
        &self,
        base: &[SegmentId],
        normal_set: &HashSet<SegmentId>,
        rng: &mut StdRng,
    ) -> Option<Route> {
        let net = self.net;
        let m = base.len();
        if m < 5 {
            return None;
        }
        // Detour span over interior positions [i, j].
        let span_max = ((m - 2) / 2).max(1);
        let i = rng.gen_range(1..m - 2);
        let j = (i + rng.gen_range(1..=span_max)).min(m - 2);
        let u = net.segment(base[i]).from;
        let v = net.segment(base[j]).to;
        let alt = shortest_path_weighted(net, u, v, |s| {
            if normal_set.contains(&s) {
                f64::INFINITY
            } else {
                net.segment(s).length
            }
        })?;
        if alt.segments.is_empty() {
            return None;
        }
        let mut segments = Vec::with_capacity(m + alt.segments.len());
        segments.extend_from_slice(&base[..i]);
        let span_start = segments.len();
        segments.extend_from_slice(&alt.segments);
        let span_end = segments.len() - 1;
        segments.extend_from_slice(&base[j + 1..]);
        if !has_unique_elements(&segments) {
            return None; // reject loops
        }
        debug_assert!(net.is_connected_path(&segments));
        Some(Route {
            segments,
            kind: RouteKind::Detour,
            detour_span: Some((span_start, span_end)),
        })
    }

    // ---- GPS emission ---------------------------------------------------

    /// Emits raw GPS points for a mapped trajectory: walk the concatenated
    /// geometry at per-segment speeds, sample every 2–4 s, add noise.
    fn emit_gps(&self, traj: &MappedTrajectory, rng: &mut StdRng) -> RawTrajectory {
        let net = self.net;
        // Concatenated polyline and cumulative speeds.
        let mut polyline: Vec<Point> = Vec::new();
        let mut speeds: Vec<(f64, f64)> = Vec::new(); // (cum length at seg start, speed)
        let mut cum = 0.0;
        for &sid in &traj.segments {
            let seg = net.segment(sid);
            let speed = seg.speed_limit * rng.gen_range(0.7..1.1);
            speeds.push((cum, speed));
            let skip = usize::from(!polyline.is_empty());
            polyline.extend(seg.geometry.iter().skip(skip));
            cum += seg.length;
        }
        let total_len = cum;
        let speed_at = |offset: f64| -> f64 {
            match speeds.binary_search_by(|(c, _)| c.partial_cmp(&offset).unwrap()) {
                Ok(k) => speeds[k].1,
                Err(0) => speeds[0].1,
                Err(k) => speeds[k - 1].1,
            }
        };
        let mut points = Vec::new();
        let mut t = traj.start_time;
        let mut offset = 0.0;
        loop {
            let pos = geo::point_at_offset(&polyline, offset).unwrap_or(polyline[0]);
            let noisy = Point::new(
                pos.x + gauss(rng) * self.config.gps_noise_std,
                pos.y + gauss(rng) * self.config.gps_noise_std,
            );
            points.push(GpsPoint { pos: noisy, t });
            if offset >= total_len {
                break;
            }
            let dt = rng.gen_range(self.config.gps_interval.0..=self.config.gps_interval.1);
            offset = (offset + speed_at(offset) * dt).min(total_len);
            t += dt;
        }
        RawTrajectory {
            id: traj.id,
            points,
        }
    }
}

fn has_unique_elements(segs: &[SegmentId]) -> bool {
    let mut seen = HashSet::with_capacity(segs.len());
    segs.iter().all(|s| seen.insert(*s))
}

/// Standard normal sample via Box–Muller.
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// SplitMix64 hash for deterministic per-segment weight jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnet::{CityBuilder, CityConfig};

    fn sim_data(seed: u64) -> (RoadNetwork, GeneratedTraffic) {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let sim = TrafficSimulator::new(&net, TrafficConfig::tiny(seed));
        let data = sim.generate();
        (net, data)
    }

    #[test]
    fn generates_requested_pairs_and_trajectories() {
        let (_, data) = sim_data(1);
        assert_eq!(data.pairs.len(), 4);
        assert!(data.trajectories.len() >= 4 * 20);
        assert_eq!(data.trajectories.len(), data.ground_truth.len());
        assert_eq!(data.trajectories.len(), data.pair_of.len());
        assert_eq!(data.trajectories.len(), data.route_of.len());
    }

    #[test]
    fn trajectories_are_connected_paths() {
        let (net, data) = sim_data(2);
        for t in &data.trajectories {
            assert!(
                net.is_connected_path(&t.segments),
                "disconnected trajectory"
            );
            assert!(t.len() >= 5);
        }
    }

    #[test]
    fn all_routes_share_sd_pair() {
        let (_, data) = sim_data(3);
        for p in &data.pairs {
            for r in &p.routes {
                assert_eq!(*r.segments.first().unwrap(), p.pair.source);
                assert_eq!(*r.segments.last().unwrap(), p.pair.dest);
            }
        }
    }

    #[test]
    fn detour_segments_disjoint_from_normals() {
        let (_, data) = sim_data(4);
        for p in &data.pairs {
            let normal_set = p.normal_segment_set(0);
            for r in &p.routes {
                if let Some((a, b)) = r.detour_span {
                    assert!(a <= b && b < r.segments.len());
                    for k in a..=b {
                        assert!(
                            !normal_set.contains(&r.segments[k]),
                            "detour span must avoid normal segments"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ground_truth_normal_routes_all_zero() {
        let (_, data) = sim_data(5);
        for (k, t) in data.trajectories.iter().enumerate() {
            let pair = &data.pairs[data.pair_of[k]];
            let route = &pair.routes[data.route_of[k]];
            if route.kind == RouteKind::Normal {
                assert!(
                    data.ground_truth[k].iter().all(|&l| l == 0),
                    "normal route must have all-zero ground truth"
                );
            } else {
                assert!(
                    data.ground_truth[k].contains(&1),
                    "detour must have anomalous segments"
                );
                // endpoints are always normal
                assert_eq!(data.ground_truth[k][0], 0);
                assert_eq!(*data.ground_truth[k].last().unwrap(), 0);
            }
            assert_eq!(data.ground_truth[k].len(), t.len());
        }
    }

    #[test]
    fn anomaly_ratio_approximately_respected() {
        let net = CityBuilder::new(CityConfig::tiny(7)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 6,
            trajs_per_pair: (200, 200),
            anomaly_ratio: 0.10,
            ..TrafficConfig::tiny(7)
        };
        let data = TrafficSimulator::new(&net, cfg).generate();
        let anomalous = data.ground_truth.iter().filter(|g| g.contains(&1)).count() as f64;
        let ratio = anomalous / data.trajectories.len() as f64;
        assert!((0.05..0.18).contains(&ratio), "ratio {ratio} out of range");
    }

    #[test]
    fn determinism() {
        let (_, a) = sim_data(11);
        let (_, b) = sim_data(11);
        assert_eq!(a.trajectories, b.trajectories);
        assert_eq!(a.ground_truth, b.ground_truth);
    }

    #[test]
    fn drift_swaps_roles() {
        let net = CityBuilder::new(CityConfig::tiny(13)).build();
        let cfg = TrafficConfig {
            drift: Some(DriftConfig {
                swap_time: 12.0 * 3600.0,
            }),
            anomaly_ratio: 0.1,
            ..TrafficConfig::tiny(13)
        };
        let sim = TrafficSimulator::new(&net, cfg);
        // Drift forces 1 normal + 1 detour.
        assert_eq!(sim.config().num_normal_routes, 1);
        let data = sim.generate();
        assert_eq!(sim.regime_of(0.0), 0);
        assert_eq!(sim.regime_of(13.0 * 3600.0), 1);
        for p in &data.pairs {
            let n0 = p.normal_route_indices(0);
            let n1 = p.normal_route_indices(1);
            assert_ne!(n0, n1, "regimes must use different normal routes");
        }
        // A regime-1 trajectory on the old normal route must be anomalous.
        let mut checked = false;
        for (k, t) in data.trajectories.iter().enumerate() {
            let pair = &data.pairs[data.pair_of[k]];
            let regime = sim.regime_of(t.start_time);
            let route = &pair.routes[data.route_of[k]];
            if regime == 1 && route.kind == RouteKind::Normal {
                assert!(data.ground_truth[k].contains(&1));
                checked = true;
            }
            if regime == 1 && route.kind == RouteKind::Detour {
                assert!(data.ground_truth[k].iter().all(|&l| l == 0));
            }
        }
        assert!(
            checked,
            "expected at least one regime-1 old-normal trajectory"
        );
    }

    #[test]
    fn gps_emission_is_plausible() {
        let net = CityBuilder::new(CityConfig::tiny(17)).build();
        let cfg = TrafficConfig {
            num_sd_pairs: 2,
            trajs_per_pair: (3, 5),
            generate_raw: true,
            ..TrafficConfig::tiny(17)
        };
        let data = TrafficSimulator::new(&net, cfg).generate();
        assert_eq!(data.raw.len(), data.trajectories.len());
        for (raw, mapped) in data.raw.iter().zip(&data.trajectories) {
            assert!(raw.len() >= 2, "at least start and end points");
            // timestamps strictly increasing with 2-4 s gaps
            for w in raw.points.windows(2) {
                let dt = w[1].t - w[0].t;
                assert!((2.0..=4.0 + 1e-9).contains(&dt), "dt={dt}");
            }
            assert_eq!(raw.id, mapped.id);
            assert!((raw.points[0].t - mapped.start_time).abs() < 1e-9);
        }
    }

    #[test]
    fn route_families_match_generate() {
        let net = CityBuilder::new(CityConfig::tiny(23)).build();
        let sim = TrafficSimulator::new(&net, TrafficConfig::tiny(23));
        let families = sim.build_route_families();
        let data = sim.generate();
        assert_eq!(families.len(), data.pairs.len());
        for (a, b) in families.iter().zip(&data.pairs) {
            assert_eq!(a.pair, b.pair);
            assert_eq!(a.routes.len(), b.routes.len());
            for (ra, rb) in a.routes.iter().zip(&b.routes) {
                assert_eq!(ra.segments, rb.segments);
                assert_eq!(ra.kind, rb.kind);
            }
        }
    }

    #[test]
    fn start_times_within_day() {
        let (_, data) = sim_data(19);
        for t in &data.trajectories {
            assert!((0.0..crate::types::SECONDS_PER_DAY).contains(&t.start_time));
        }
    }
}
