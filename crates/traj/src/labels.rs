//! Per-segment binary labels and subtrajectory extraction.
//!
//! Detectors output one label per road segment (0 = normal, 1 = anomalous).
//! An *anomalous subtrajectory* is a maximal run of 1-labels (paper §IV-D:
//! "an anomalous subtrajectory boundary can be identified when the labels of
//! two adjacent road segments are different").

use serde::{Deserialize, Serialize};

/// A maximal run of anomalous labels: positions `start..=end` (inclusive)
/// within a trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LabelSpan {
    /// First anomalous position.
    pub start: usize,
    /// Last anomalous position (inclusive).
    pub end: usize,
}

impl LabelSpan {
    /// Number of segments covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Spans are never empty; provided for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `i` lies within the span.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        (self.start..=self.end).contains(&i)
    }
}

/// Extracts the maximal runs of 1-labels from a label sequence.
///
/// ```
/// use traj::extract_subtrajectories;
/// let spans = extract_subtrajectories(&[0, 1, 1, 0, 1]);
/// assert_eq!(spans.len(), 2);
/// assert_eq!((spans[0].start, spans[0].end), (1, 2));
/// assert_eq!((spans[1].start, spans[1].end), (4, 4));
/// ```
pub fn extract_subtrajectories(labels: &[u8]) -> Vec<LabelSpan> {
    let mut spans = Vec::new();
    let mut start = None;
    for (i, &l) in labels.iter().enumerate() {
        match (l, start) {
            (1, None) => start = Some(i),
            (0, Some(s)) => {
                spans.push(LabelSpan {
                    start: s,
                    end: i - 1,
                });
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        spans.push(LabelSpan {
            start: s,
            end: labels.len() - 1,
        });
    }
    spans
}

/// Rebuilds a label sequence of length `n` from spans (inverse of
/// [`extract_subtrajectories`] for non-overlapping sorted spans).
pub fn spans_to_labels(spans: &[LabelSpan], n: usize) -> Vec<u8> {
    let mut labels = vec![0u8; n];
    for s in spans {
        for l in labels.iter_mut().take(s.end.min(n - 1) + 1).skip(s.start) {
            *l = 1;
        }
    }
    labels
}

/// Fraction of 1-labels in a sequence (0.0 for empty input).
pub fn anomaly_fraction(labels: &[u8]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    labels.iter().filter(|&&l| l == 1).count() as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_all_zero() {
        assert!(extract_subtrajectories(&[]).is_empty());
        assert!(extract_subtrajectories(&[0, 0, 0]).is_empty());
    }

    #[test]
    fn all_ones_is_single_span() {
        let spans = extract_subtrajectories(&[1, 1, 1]);
        assert_eq!(spans, vec![LabelSpan { start: 0, end: 2 }]);
        assert_eq!(spans[0].len(), 3);
    }

    #[test]
    fn trailing_run_closed() {
        let spans = extract_subtrajectories(&[0, 1, 1]);
        assert_eq!(spans, vec![LabelSpan { start: 1, end: 2 }]);
    }

    #[test]
    fn leading_run() {
        let spans = extract_subtrajectories(&[1, 0, 0, 1]);
        assert_eq!(
            spans,
            vec![
                LabelSpan { start: 0, end: 0 },
                LabelSpan { start: 3, end: 3 }
            ]
        );
    }

    #[test]
    fn spans_roundtrip() {
        let labels = vec![0, 1, 1, 0, 0, 1, 0, 1, 1, 1];
        let spans = extract_subtrajectories(&labels);
        assert_eq!(spans_to_labels(&spans, labels.len()), labels);
    }

    #[test]
    fn anomaly_fraction_basics() {
        assert_eq!(anomaly_fraction(&[]), 0.0);
        assert_eq!(anomaly_fraction(&[0, 0]), 0.0);
        assert!((anomaly_fraction(&[0, 1, 1, 0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn contains_checks_bounds() {
        let s = LabelSpan { start: 2, end: 4 };
        assert!(!s.contains(1));
        assert!(s.contains(2));
        assert!(s.contains(4));
        assert!(!s.contains(5));
    }
}
