//! Session-oriented serving API: multiplex many concurrent trajectories
//! over one detector implementation.
//!
//! The paper's motivating scenario is a ride-hailing operator watching
//! *many* ongoing trips at once (Problem 1 is stated per trip, but the
//! serving system is fleet-scale). [`crate::OnlineDetector`] models exactly
//! one ongoing trajectory per detector value; [`SessionEngine`] is the
//! fleet-scale counterpart: `open` admits a new trip, `observe` feeds one
//! segment of *any* open trip, and `close` finalises a trip and returns its
//! labels. Engines may override [`SessionEngine::observe_batch`] to advance
//! every session that received a point in the same tick in one batched
//! model pass (see `rl4oasd::StreamEngine`).
//!
//! Two adapters bridge the old and new interfaces:
//!
//! * [`SessionMux`] lifts any [`OnlineDetector`] factory to a
//!   [`SessionEngine`] by giving each session its own detector value
//!   (cheap for the heuristic baselines, which share their fitted
//!   statistics behind an `Arc`);
//! * [`SingleSession`] wraps a [`SessionEngine`] back into an
//!   [`OnlineDetector`], making the per-trajectory trait a thin
//!   single-session view of the engine.

use crate::detector::OnlineDetector;
use crate::types::SdPair;
use rnet::SegmentId;

/// Opaque handle of one open trajectory session within an engine.
///
/// Handles are generational: closing a session invalidates its id, and a
/// stale id panics instead of silently touching a recycled slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    #[inline]
    fn new(index: u32, generation: u32) -> Self {
        SessionId(((generation as u64) << 32) | index as u64)
    }

    #[inline]
    fn index(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    #[inline]
    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}g{}", self.index(), self.generation())
    }
}

/// A detector serving many concurrent trajectory sessions.
///
/// Contract: per session, the label sequence produced by `open` /
/// `observe`* / `close` is identical to what the same detector would emit
/// for that trajectory alone through [`OnlineDetector`] — interleaving
/// sessions never changes labels.
pub trait SessionEngine {
    /// Method name as used in the paper's tables (e.g. `"RL4OASD"`).
    fn engine_name(&self) -> &'static str;

    /// Opens a session for a trip with the given SD pair and start time
    /// (seconds since midnight), returning its handle.
    fn open(&mut self, sd: SdPair, start_time: f64) -> SessionId;

    /// Feeds the next road segment of one open session, returning the
    /// provisional label (0 normal / 1 anomalous).
    fn observe(&mut self, session: SessionId, segment: SegmentId) -> u8;

    /// Closes a session, returning the final labels of all its observed
    /// segments (detectors with delayed decisions may revise here).
    fn close(&mut self, session: SessionId) -> Vec<u8>;

    /// Advances every `(session, segment)` event of one tick, appending one
    /// label per event to `out` (cleared first, same order as `events`).
    ///
    /// A session may appear multiple times in `events`; occurrences are
    /// applied in order. The default implementation loops over
    /// [`SessionEngine::observe`]; engines with batched model steps
    /// override this.
    fn observe_batch(&mut self, events: &[(SessionId, SegmentId)], out: &mut Vec<u8>) {
        out.clear();
        out.reserve(events.len());
        for &(session, segment) in events {
            out.push(self.observe(session, segment));
        }
    }

    /// Number of currently open sessions.
    fn active_sessions(&self) -> usize;
}

impl<E: SessionEngine + ?Sized> SessionEngine for Box<E> {
    fn engine_name(&self) -> &'static str {
        (**self).engine_name()
    }
    fn open(&mut self, sd: SdPair, start_time: f64) -> SessionId {
        (**self).open(sd, start_time)
    }
    fn observe(&mut self, session: SessionId, segment: SegmentId) -> u8 {
        (**self).observe(session, segment)
    }
    fn close(&mut self, session: SessionId) -> Vec<u8> {
        (**self).close(session)
    }
    fn observe_batch(&mut self, events: &[(SessionId, SegmentId)], out: &mut Vec<u8>) {
        (**self).observe_batch(events, out)
    }
    fn active_sessions(&self) -> usize {
        (**self).active_sessions()
    }
}

/// Generational slot map backing session storage in engines.
///
/// O(1) insert / lookup / remove with index reuse; generations catch stale
/// handles. [`SessionSlab::take`] / [`SessionSlab::restore`] let an engine
/// move several sessions out simultaneously for a batched pass without
/// aliasing the slab.
#[derive(Debug, Clone)]
pub struct SessionSlab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    active: usize,
}

#[derive(Debug, Clone)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

impl<T> Default for SessionSlab<T> {
    fn default() -> Self {
        SessionSlab {
            slots: Vec::new(),
            free: Vec::new(),
            active: 0,
        }
    }
}

impl<T> SessionSlab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live sessions (including temporarily taken ones).
    pub fn len(&self) -> usize {
        self.active
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.active == 0
    }

    /// Stores a value, returning its handle.
    pub fn insert(&mut self, value: T) -> SessionId {
        self.active += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none());
            slot.value = Some(value);
            SessionId::new(index, slot.generation)
        } else {
            let index = u32::try_from(self.slots.len()).expect("more than 2^32 sessions");
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            SessionId::new(index, 0)
        }
    }

    fn slot_mut(&mut self, id: SessionId) -> &mut Slot<T> {
        let slot = self
            .slots
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("unknown session {id}"));
        assert_eq!(
            slot.generation,
            id.generation(),
            "stale session handle {id} (session was closed)"
        );
        slot
    }

    /// Mutable access to a session's value.
    ///
    /// # Panics
    /// Panics on unknown, closed or taken handles.
    pub fn get_mut(&mut self, id: SessionId) -> &mut T {
        self.slot_mut(id)
            .value
            .as_mut()
            .unwrap_or_else(|| panic!("session {id} is taken or closed"))
    }

    /// Moves a session's value out, keeping its slot reserved. Pair with
    /// [`SessionSlab::restore`].
    pub fn take(&mut self, id: SessionId) -> T {
        self.slot_mut(id)
            .value
            .take()
            .unwrap_or_else(|| panic!("session {id} is taken or closed"))
    }

    /// Puts back a value previously [`SessionSlab::take`]n.
    pub fn restore(&mut self, id: SessionId, value: T) {
        let slot = self.slot_mut(id);
        assert!(slot.value.is_none(), "session {id} was not taken");
        slot.value = Some(value);
    }

    /// Removes a session, invalidating its handle.
    pub fn remove(&mut self, id: SessionId) -> T {
        let index = id.index();
        let value = self
            .slot_mut(id)
            .value
            .take()
            .unwrap_or_else(|| panic!("session {id} is taken or closed"));
        self.slots[index].generation = self.slots[index].generation.wrapping_add(1);
        self.free.push(index as u32);
        self.active -= 1;
        value
    }
}

/// Lifts an [`OnlineDetector`] factory to a [`SessionEngine`]: each session
/// owns one detector value produced by the factory.
///
/// This is how the baselines (IBOAT, DBTOD, CTSS, the GM-VSAE family via
/// `Thresholded`) gain the session API without per-detector changes —
/// their heavy fitted state lives behind `Arc`s, so per-session values are
/// cheap. Per-session labels are identical to the per-trajectory path by
/// construction.
pub struct SessionMux<D, F> {
    name: &'static str,
    factory: F,
    sessions: SessionSlab<D>,
}

impl<D: OnlineDetector, F: FnMut() -> D> SessionMux<D, F> {
    /// Builds a mux around a detector factory. One probe detector is
    /// created (and dropped) to capture the method name; when the factory
    /// produces heavyweight detectors, prefer [`SessionMux::named`].
    pub fn new(mut factory: F) -> Self {
        let name = factory().name();
        Self::named(name, factory)
    }

    /// Builds a mux with an explicit engine name, skipping the probe
    /// construction (for factories whose detectors are expensive to
    /// build, e.g. ones copying trained model weights).
    pub fn named(name: &'static str, factory: F) -> Self {
        SessionMux {
            name,
            factory,
            sessions: SessionSlab::new(),
        }
    }
}

impl<D: OnlineDetector, F: FnMut() -> D> SessionEngine for SessionMux<D, F> {
    fn engine_name(&self) -> &'static str {
        self.name
    }

    fn open(&mut self, sd: SdPair, start_time: f64) -> SessionId {
        let mut detector = (self.factory)();
        detector.begin(sd, start_time);
        self.sessions.insert(detector)
    }

    fn observe(&mut self, session: SessionId, segment: SegmentId) -> u8 {
        self.sessions.get_mut(session).observe(segment)
    }

    fn close(&mut self, session: SessionId) -> Vec<u8> {
        self.sessions.remove(session).finish()
    }

    fn active_sessions(&self) -> usize {
        self.sessions.len()
    }
}

/// Wraps a [`SessionEngine`] into an [`OnlineDetector`] driving exactly one
/// session at a time — the per-trajectory trait as a thin view of the
/// fleet-scale engine.
pub struct SingleSession<E: SessionEngine> {
    engine: E,
    current: Option<SessionId>,
}

impl<E: SessionEngine> SingleSession<E> {
    /// Wraps an engine.
    pub fn new(engine: E) -> Self {
        SingleSession {
            engine,
            current: None,
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Unwraps the engine, abandoning any open session.
    pub fn into_engine(mut self) -> E {
        if let Some(session) = self.current.take() {
            self.engine.close(session);
        }
        self.engine
    }
}

impl<E: SessionEngine> OnlineDetector for SingleSession<E> {
    fn name(&self) -> &'static str {
        self.engine.engine_name()
    }

    fn begin(&mut self, sd: SdPair, start_time: f64) {
        if let Some(previous) = self.current.take() {
            self.engine.close(previous);
        }
        self.current = Some(self.engine.open(sd, start_time));
    }

    fn observe(&mut self, segment: SegmentId) -> u8 {
        let session = self.current.expect("observe before begin");
        self.engine.observe(session, segment)
    }

    fn finish(&mut self) -> Vec<u8> {
        let session = self.current.take().expect("finish before begin");
        self.engine.close(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::AlwaysNormal;
    use crate::types::{MappedTrajectory, TrajectoryId};

    fn sd(a: u32, b: u32) -> SdPair {
        SdPair {
            source: SegmentId(a),
            dest: SegmentId(b),
        }
    }

    #[test]
    fn slab_insert_get_remove() {
        let mut slab = SessionSlab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(*slab.get_mut(a), "a");
        assert_eq!(slab.remove(a), "a");
        assert_eq!(slab.len(), 1);
        assert_eq!(*slab.get_mut(b), "b");
        // slot reuse with a fresh generation
        let c = slab.insert("c");
        assert_eq!(c.index(), a.index());
        assert_ne!(c, a);
    }

    #[test]
    #[should_panic(expected = "stale session")]
    fn slab_rejects_stale_handles() {
        let mut slab = SessionSlab::new();
        let a = slab.insert(1);
        slab.remove(a);
        let _b = slab.insert(2); // reuses the slot
        slab.get_mut(a);
    }

    #[test]
    fn slab_take_and_restore() {
        let mut slab = SessionSlab::new();
        let a = slab.insert(vec![1, 2]);
        let v = slab.take(a);
        assert_eq!(slab.len(), 1, "taken sessions stay live");
        slab.restore(a, v);
        assert_eq!(*slab.get_mut(a), vec![1, 2]);
    }

    #[test]
    fn mux_sessions_are_independent() {
        let mut mux = SessionMux::new(AlwaysNormal::default);
        assert_eq!(mux.engine_name(), "AlwaysNormal");
        let s1 = mux.open(sd(0, 9), 0.0);
        let s2 = mux.open(sd(1, 8), 0.0);
        assert_eq!(mux.active_sessions(), 2);
        mux.observe(s1, SegmentId(0));
        mux.observe(s2, SegmentId(1));
        mux.observe(s1, SegmentId(5));
        assert_eq!(mux.close(s1).len(), 2);
        assert_eq!(mux.close(s2).len(), 1);
        assert_eq!(mux.active_sessions(), 0);
    }

    #[test]
    fn default_observe_batch_matches_sequential() {
        let mut mux = SessionMux::new(AlwaysNormal::default);
        let s1 = mux.open(sd(0, 9), 0.0);
        let s2 = mux.open(sd(1, 8), 0.0);
        let events = vec![
            (s1, SegmentId(0)),
            (s2, SegmentId(1)),
            (s1, SegmentId(2)),
            (s1, SegmentId(9)),
        ];
        let mut out = Vec::new();
        mux.observe_batch(&events, &mut out);
        assert_eq!(out, vec![0, 0, 0, 0]);
        assert_eq!(mux.close(s1).len(), 3);
        assert_eq!(mux.close(s2).len(), 1);
    }

    #[test]
    fn single_session_adapter_behaves_like_detector() {
        let t = MappedTrajectory {
            id: TrajectoryId(0),
            segments: vec![SegmentId(0), SegmentId(1), SegmentId(2)],
            start_time: 0.0,
        };
        let mut adapter = SingleSession::new(SessionMux::new(AlwaysNormal::default));
        assert_eq!(adapter.label_trajectory(&t), vec![0, 0, 0]);
        // reusable: begin closes the previous session implicitly
        adapter.begin(sd(0, 2), 0.0);
        adapter.observe(SegmentId(0));
        assert_eq!(adapter.label_trajectory(&t), vec![0, 0, 0]);
        assert_eq!(adapter.engine().active_sessions(), 0);
    }
}
