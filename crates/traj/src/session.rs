//! Session-oriented serving API: multiplex many concurrent trajectories
//! over one detector implementation.
//!
//! The paper's motivating scenario is a ride-hailing operator watching
//! *many* ongoing trips at once (Problem 1 is stated per trip, but the
//! serving system is fleet-scale). [`crate::OnlineDetector`] models exactly
//! one ongoing trajectory per detector value; [`SessionEngine`] is the
//! fleet-scale counterpart: `open` admits a new trip, `observe` feeds one
//! segment of *any* open trip, and `close` finalises a trip and returns its
//! labels. Engines may override [`SessionEngine::observe_batch`] to advance
//! every session that received a point in the same tick in one batched
//! model pass (see `rl4oasd::StreamEngine`).
//!
//! Two adapters bridge the old and new interfaces:
//!
//! * [`SessionMux`] lifts any [`OnlineDetector`] factory to a
//!   [`SessionEngine`] by giving each session its own detector value
//!   (cheap for the heuristic baselines, which share their fitted
//!   statistics behind an `Arc`);
//! * [`SingleSession`] wraps a [`SessionEngine`] back into an
//!   [`OnlineDetector`], making the per-trajectory trait a thin
//!   single-session view of the engine.

use crate::detector::OnlineDetector;
use crate::hibernate::{FrozenArena, FrozenRef, Hibernate};
use crate::types::SdPair;
use rnet::SegmentId;

/// Opaque handle of one open trajectory session within an engine.
///
/// Handles are generational: closing a session invalidates its id, and a
/// stale id panics instead of silently touching a recycled slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    #[inline]
    fn new(index: u32, generation: u32) -> Self {
        SessionId(((generation as u64) << 32) | index as u64)
    }

    #[inline]
    fn index(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    #[inline]
    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Rebuilds a handle from its raw transport form (ingest front door:
    /// handles cross thread boundaries as plain counters).
    #[inline]
    pub(crate) fn from_raw(raw: u64) -> Self {
        SessionId(raw)
    }

    /// The raw transport form of this handle.
    #[inline]
    pub(crate) fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}g{}", self.index(), self.generation())
    }
}

/// A detector serving many concurrent trajectory sessions.
///
/// Contract: per session, the label sequence produced by `open` /
/// `observe`* / `close` is identical to what the same detector would emit
/// for that trajectory alone through [`OnlineDetector`] — interleaving
/// sessions never changes labels.
pub trait SessionEngine {
    /// Method name as used in the paper's tables (e.g. `"RL4OASD"`).
    fn engine_name(&self) -> &'static str;

    /// Opens a session for a trip with the given SD pair and start time
    /// (seconds since midnight), returning its handle.
    fn open(&mut self, sd: SdPair, start_time: f64) -> SessionId;

    /// Opens a session under a **scope** — an engine-interpreted
    /// namespace id (the serving tier keys it by tenant, so each tenant
    /// can pin its own model epoch; see `rl4oasd::StreamEngine::
    /// set_scope_model`). Scope 0 is the default namespace: for every
    /// engine, `open_scoped(0, ..)` must behave exactly like `open`.
    /// Engines without scoped state ignore the scope entirely — the
    /// default forwards to [`SessionEngine::open`].
    fn open_scoped(&mut self, scope: u32, sd: SdPair, start_time: f64) -> SessionId {
        let _ = scope;
        self.open(sd, start_time)
    }

    /// Feeds the next road segment of one open session, returning the
    /// provisional label (0 normal / 1 anomalous).
    fn observe(&mut self, session: SessionId, segment: SegmentId) -> u8;

    /// Closes a session, returning the final labels of all its observed
    /// segments (detectors with delayed decisions may revise here).
    fn close(&mut self, session: SessionId) -> Vec<u8>;

    /// Advances every `(session, segment)` event of one tick, appending one
    /// label per event to `out` (cleared first, same order as `events`).
    ///
    /// A session may appear multiple times in `events`; occurrences are
    /// applied in order. The default implementation loops over
    /// [`SessionEngine::observe`]; engines with batched model steps
    /// override this.
    fn observe_batch(&mut self, events: &[(SessionId, SegmentId)], out: &mut Vec<u8>) {
        out.clear();
        out.reserve(events.len());
        for &(session, segment) in events {
            out.push(self.observe(session, segment));
        }
    }

    /// Background-maintenance hook, invoked by drivers at batch
    /// boundaries — the [`crate::IngestFrontDoor`] workers call it at
    /// every flush boundary (the same seam that applies control
    /// commands), and synchronous drivers may call it between ticks.
    /// Engines use it for work that must never split a batch, e.g.
    /// sweeping idle sessions into a hibernated cold tier
    /// (`rl4oasd::StreamEngine`). Must not change any label a session
    /// would otherwise emit. Default: no-op.
    fn maintain(&mut self) {}

    /// Whether `segment` is a value this engine can process without
    /// panicking — the poison-event pre-screen of the supervised ingest
    /// workers. Must be cheap, side-effect free and deterministic.
    /// Engines whose `observe` indexes by segment (embedding lookups)
    /// override this with their bounds check; the default admits
    /// everything.
    fn admit(&self, segment: SegmentId) -> bool {
        let _ = segment;
        true
    }

    /// Number of currently open sessions.
    fn active_sessions(&self) -> usize;
}

/// A [`SessionEngine`] whose open sessions can be evacuated into opaque
/// blobs and re-imported into a *fresh* engine built by the same factory —
/// the salvage path of the supervised ingest workers
/// ([`crate::IngestFrontDoor::build_supervised`]): when a worker panics,
/// every session not implicated in the fault is exported from the wrecked
/// engine, the engine is replaced, and the blobs are imported back, with
/// labels byte-identical to a fault-free run.
///
/// Implementations typically reuse their [`Hibernate`] freeze format.
pub trait SupervisedEngine: SessionEngine {
    /// Exports every open session as `(handle, blob)` pairs, emptying the
    /// engine. **Must not panic**, even when called on an engine whose
    /// last batch panicked mid-flight: wrap per-session encoding in
    /// `catch_unwind` and silently skip sessions whose state is
    /// unserialisable — skipped sessions are quarantined by the caller.
    fn export_sessions(&mut self) -> Vec<(SessionId, Vec<u8>)>;

    /// Imports one exported blob into this (fresh) engine, returning its
    /// new handle — or `None` when the blob cannot be represented here
    /// (e.g. it is pinned to a model epoch this engine does not have);
    /// the caller quarantines such sessions.
    fn import_session(&mut self, blob: &[u8]) -> Option<SessionId>;
}

impl<E: SessionEngine + ?Sized> SessionEngine for Box<E> {
    fn engine_name(&self) -> &'static str {
        (**self).engine_name()
    }
    fn open(&mut self, sd: SdPair, start_time: f64) -> SessionId {
        (**self).open(sd, start_time)
    }
    fn open_scoped(&mut self, scope: u32, sd: SdPair, start_time: f64) -> SessionId {
        (**self).open_scoped(scope, sd, start_time)
    }
    fn observe(&mut self, session: SessionId, segment: SegmentId) -> u8 {
        (**self).observe(session, segment)
    }
    fn close(&mut self, session: SessionId) -> Vec<u8> {
        (**self).close(session)
    }
    fn observe_batch(&mut self, events: &[(SessionId, SegmentId)], out: &mut Vec<u8>) {
        (**self).observe_batch(events, out)
    }
    fn maintain(&mut self) {
        (**self).maintain()
    }
    fn admit(&self, segment: SegmentId) -> bool {
        (**self).admit(segment)
    }
    fn active_sessions(&self) -> usize {
        (**self).active_sessions()
    }
}

impl<E: SupervisedEngine + ?Sized> SupervisedEngine for Box<E> {
    fn export_sessions(&mut self) -> Vec<(SessionId, Vec<u8>)> {
        (**self).export_sessions()
    }
    fn import_session(&mut self, blob: &[u8]) -> Option<SessionId> {
        (**self).import_session(blob)
    }
}

/// Which tier a slot's session currently lives in.
#[derive(Debug, Clone)]
enum Tier<T> {
    /// No session (slot is on the free list, or about to be truncated).
    Vacant,
    /// Live session, resident in memory.
    Hot(T),
    /// Live session, hibernated: its frozen blob lives in the arena.
    Cold(FrozenRef),
    /// Live session temporarily moved out via [`SessionSlab::take`].
    Taken,
}

/// Generational slot map backing session storage in engines — a
/// **two-tier** store since the hibernation work.
///
/// O(1) insert / lookup / remove with index reuse; generations catch stale
/// handles. [`SessionSlab::take`] / [`SessionSlab::restore`] let an engine
/// move several sessions out simultaneously for a batched pass without
/// aliasing the slab.
///
/// **Cold tier.** [`SessionSlab::freeze_with`] (or the [`Hibernate`]-trait
/// convenience [`SessionSlab::hibernate`]) converts a hot slot into a
/// compact frozen blob stored in an internal [`FrozenArena`], keyed by the
/// same generational [`SessionId`]; [`SessionSlab::thaw_with`] /
/// [`SessionSlab::rehydrate`] restore it. Frozen sessions still count as
/// live ([`SessionSlab::len`]) and keep their handle, but direct access
/// (`get`/`get_mut`/`take`/`remove`) panics until they are thawed — the
/// owner decides when to rehydrate (engines do it transparently on the
/// session's next event).
///
/// **Capacity compaction.** `slots`/`free` historically only ever grew, so
/// a burst of opens pinned peak capacity forever. The slab now shrinks its
/// tail of vacant slots (live handles cannot be relocated, so only the
/// tail is reclaimable) whenever live count falls far below capacity; a
/// slab-wide generation floor guarantees handles into truncated slots can
/// never alias later reincarnations of the same index.
#[derive(Debug, Clone)]
pub struct SessionSlab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    active: usize,
    /// Live sessions currently in the cold tier.
    frozen: usize,
    arena: FrozenArena,
    /// Reused encode buffer for [`SessionSlab::freeze_with`].
    scratch: Vec<u8>,
    /// Generation assigned to freshly pushed slots. Raised past every
    /// truncated slot's generation when the tail shrinks, so a stale
    /// handle into a truncated-then-recreated index can never validate.
    generation_floor: u32,
}

#[derive(Debug, Clone)]
struct Slot<T> {
    generation: u32,
    value: Tier<T>,
}

/// Below this capacity the slab never bothers shrinking.
const MIN_SHRINK_CAPACITY: usize = 1024;

impl<T> Default for SessionSlab<T> {
    fn default() -> Self {
        SessionSlab {
            slots: Vec::new(),
            free: Vec::new(),
            active: 0,
            frozen: 0,
            arena: FrozenArena::new(),
            scratch: Vec::new(),
            generation_floor: 0,
        }
    }
}

impl<T> SessionSlab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live sessions (hot, frozen and temporarily taken ones).
    pub fn len(&self) -> usize {
        self.active
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.active == 0
    }

    /// Stores a value, returning its handle.
    pub fn insert(&mut self, value: T) -> SessionId {
        self.active += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(matches!(slot.value, Tier::Vacant));
            slot.value = Tier::Hot(value);
            SessionId::new(index, slot.generation)
        } else {
            let index = u32::try_from(self.slots.len()).expect("more than 2^32 sessions");
            let generation = self.generation_floor;
            self.slots.push(Slot {
                generation,
                value: Tier::Hot(value),
            });
            SessionId::new(index, generation)
        }
    }

    fn slot(&self, id: SessionId) -> &Slot<T> {
        let slot = self
            .slots
            .get(id.index())
            .unwrap_or_else(|| panic!("unknown session {id}"));
        assert_eq!(
            slot.generation,
            id.generation(),
            "stale session handle {id} (session was closed)"
        );
        slot
    }

    fn slot_mut(&mut self, id: SessionId) -> &mut Slot<T> {
        let slot = self
            .slots
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("unknown session {id}"));
        assert_eq!(
            slot.generation,
            id.generation(),
            "stale session handle {id} (session was closed)"
        );
        slot
    }

    /// Shared access to a session's value.
    ///
    /// # Panics
    /// Panics on unknown, closed, taken or hibernated handles.
    pub fn get(&self, id: SessionId) -> &T {
        match &self.slot(id).value {
            Tier::Hot(value) => value,
            Tier::Cold(_) => panic!("session {id} is hibernated (thaw it first)"),
            Tier::Vacant | Tier::Taken => panic!("session {id} is taken or closed"),
        }
    }

    /// Mutable access to a session's value.
    ///
    /// # Panics
    /// Panics on unknown, closed, taken or hibernated handles.
    pub fn get_mut(&mut self, id: SessionId) -> &mut T {
        match &mut self.slot_mut(id).value {
            Tier::Hot(value) => value,
            Tier::Cold(_) => panic!("session {id} is hibernated (thaw it first)"),
            Tier::Vacant | Tier::Taken => panic!("session {id} is taken or closed"),
        }
    }

    /// Moves a session's value out, keeping its slot reserved. Pair with
    /// [`SessionSlab::restore`].
    ///
    /// # Panics
    /// Panics on unknown, closed, taken or hibernated handles (a frozen
    /// session must be thawed before it can be taken).
    pub fn take(&mut self, id: SessionId) -> T {
        let slot = self.slot_mut(id);
        match std::mem::replace(&mut slot.value, Tier::Taken) {
            Tier::Hot(value) => value,
            Tier::Cold(r) => {
                slot.value = Tier::Cold(r);
                panic!("session {id} is hibernated (thaw it first)")
            }
            Tier::Vacant | Tier::Taken => panic!("session {id} is taken or closed"),
        }
    }

    /// Puts back a value previously [`SessionSlab::take`]n.
    pub fn restore(&mut self, id: SessionId, value: T) {
        let slot = self.slot_mut(id);
        assert!(
            matches!(slot.value, Tier::Taken),
            "session {id} was not taken"
        );
        slot.value = Tier::Hot(value);
    }

    /// Removes a session, invalidating its handle (and shrinking the slot
    /// tail when live count has fallen far below capacity).
    ///
    /// # Panics
    /// Panics on unknown, closed, taken or hibernated handles (a frozen
    /// session must be thawed before it can be removed).
    pub fn remove(&mut self, id: SessionId) -> T {
        let index = id.index();
        let slot = self.slot_mut(id);
        let value = match std::mem::replace(&mut slot.value, Tier::Vacant) {
            Tier::Hot(value) => value,
            Tier::Cold(r) => {
                slot.value = Tier::Cold(r);
                panic!("session {id} is hibernated (thaw it first)")
            }
            Tier::Vacant | Tier::Taken => panic!("session {id} is taken or closed"),
        };
        self.slots[index].generation = self.slots[index].generation.wrapping_add(1);
        self.free.push(index as u32);
        self.active -= 1;
        self.maybe_shrink();
        value
    }

    /// Hibernates a hot session: `encode` serialises its value into the
    /// provided buffer and the blob moves to the internal arena. The
    /// handle stays valid; direct access panics until
    /// [`SessionSlab::thaw_with`].
    ///
    /// # Panics
    /// Panics on unknown, closed, taken or already-hibernated handles.
    pub fn freeze_with(&mut self, id: SessionId, encode: impl FnOnce(&T, &mut Vec<u8>)) {
        let slot = self.slot_mut(id);
        let value = match std::mem::replace(&mut slot.value, Tier::Taken) {
            Tier::Hot(value) => value,
            Tier::Cold(r) => {
                slot.value = Tier::Cold(r);
                panic!("session {id} is already hibernated")
            }
            Tier::Vacant | Tier::Taken => panic!("session {id} is taken or closed"),
        };
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        encode(&value, &mut buf);
        let r = self.arena.alloc(&buf);
        self.scratch = buf;
        self.slot_mut(id).value = Tier::Cold(r);
        self.frozen += 1;
    }

    /// Rehydrates a hibernated session: `decode` rebuilds the value from
    /// the frozen blob, which is then freed from the arena.
    ///
    /// # Panics
    /// Panics on unknown, closed handles, or handles that are not
    /// currently hibernated.
    pub fn thaw_with(&mut self, id: SessionId, decode: impl FnOnce(&[u8]) -> T) {
        let r = match &self.slot(id).value {
            Tier::Cold(r) => *r,
            _ => panic!("session {id} is not hibernated"),
        };
        let value = decode(self.arena.get(r));
        self.arena.free(r);
        self.slot_mut(id).value = Tier::Hot(value);
        self.frozen -= 1;
    }

    /// Hibernates a hot session through its [`Hibernate`] impl.
    pub fn hibernate<C: ?Sized>(&mut self, id: SessionId, ctx: &C)
    where
        T: Hibernate<C>,
    {
        self.freeze_with(id, |value, out| value.freeze(ctx, out));
    }

    /// Rehydrates a hibernated session through its [`Hibernate`] impl.
    pub fn rehydrate<C: ?Sized>(&mut self, id: SessionId, ctx: &C)
    where
        T: Hibernate<C>,
    {
        self.thaw_with(id, |bytes| T::thaw(ctx, bytes));
    }

    /// Whether the session is currently hibernated.
    ///
    /// # Panics
    /// Panics on unknown or stale handles.
    pub fn is_frozen(&self, id: SessionId) -> bool {
        matches!(self.slot(id).value, Tier::Cold(_))
    }

    /// Number of live sessions currently in the cold tier.
    pub fn frozen_len(&self) -> usize {
        self.frozen
    }

    /// Number of live sessions currently resident (hot or taken).
    pub fn resident_len(&self) -> usize {
        self.active - self.frozen
    }

    /// Payload bytes of all frozen sessions (live arena bytes).
    pub fn frozen_bytes(&self) -> usize {
        self.arena.live_bytes()
    }

    /// Total allocated footprint of the cold tier (arena chunks + entry
    /// table), ≥ [`SessionSlab::frozen_bytes`].
    pub fn frozen_footprint_bytes(&self) -> usize {
        self.arena.footprint_bytes()
    }

    /// Cumulative compactions the cold-tier arena has run so far (edge
    /// detection for telemetry: a delta since the last observation means
    /// the arena compacted in between).
    pub fn compactions(&self) -> u64 {
        self.arena.compactions()
    }

    /// Bookkeeping bytes of the slot map itself (slot and free-list
    /// capacity), excluding the values.
    pub fn slot_overhead_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot<T>>() + self.free.capacity() * 4
    }

    /// Allocated slot capacity (≥ [`SessionSlab::len`]); shrinks when
    /// live count falls far below it.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Iterates over the **frozen** (hibernated) sessions' handles — the
    /// salvage surface for supervised-worker recovery, which freezes every
    /// exportable session and then lifts the blobs out with
    /// [`SessionSlab::take_frozen`].
    pub fn frozen_ids(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.slots.iter().enumerate().filter_map(|(index, slot)| {
            if matches!(slot.value, Tier::Cold(_)) {
                Some(SessionId::new(index as u32, slot.generation))
            } else {
                None
            }
        })
    }

    /// Removes a frozen session, returning an owned copy of its
    /// serialised blob (the arena bytes are freed) and invalidating its
    /// handle — `remove` for the cold tier.
    ///
    /// # Panics
    /// Panics on handles that are not currently hibernated.
    pub fn take_frozen(&mut self, id: SessionId) -> Vec<u8> {
        let index = id.index();
        let r = match &self.slot(id).value {
            Tier::Cold(r) => *r,
            _ => panic!("session {id} is not hibernated"),
        };
        let blob = self.arena.get(r).to_vec();
        self.arena.free(r);
        self.frozen -= 1;
        self.slot_mut(id).value = Tier::Vacant;
        self.slots[index].generation = self.slots[index].generation.wrapping_add(1);
        self.free.push(index as u32);
        self.active -= 1;
        self.maybe_shrink();
        blob
    }

    /// Iterates over the **hot** sessions (not frozen, not taken) with
    /// their handles — the sweep surface for idle-session hibernation.
    pub fn iter_hot(&self) -> impl Iterator<Item = (SessionId, &T)> {
        self.slots.iter().enumerate().filter_map(|(index, slot)| {
            if let Tier::Hot(value) = &slot.value {
                Some((SessionId::new(index as u32, slot.generation), value))
            } else {
                None
            }
        })
    }

    /// Tail-truncates vacant slots once live count drops below a quarter
    /// of capacity (down to twice the live count). Live handles pin their
    /// slots, so interior vacancies stay; the generation floor makes sure
    /// truncated indices can never resurrect an old handle.
    fn maybe_shrink(&mut self) {
        let cap = self.slots.len();
        if cap < MIN_SHRINK_CAPACITY || self.active >= cap / 4 {
            return;
        }
        let keep = (self.active * 2).max(MIN_SHRINK_CAPACITY / 2);
        let mut new_len = cap;
        while new_len > keep && matches!(self.slots[new_len - 1].value, Tier::Vacant) {
            new_len -= 1;
        }
        if new_len == cap {
            return;
        }
        for slot in &self.slots[new_len..] {
            // `wrapping_add` mirrors the generation bump in `remove`; on
            // the astronomically unlikely wrap the floor still moves past
            // the last issued generation for these indices.
            self.generation_floor = self.generation_floor.max(slot.generation.wrapping_add(1));
        }
        self.slots.truncate(new_len);
        self.slots.shrink_to_fit();
        self.free.retain(|&i| (i as usize) < new_len);
        self.free.shrink_to_fit();
    }
}

/// Where a routed session lives: its shard and its shard-local handle.
#[derive(Debug, Clone, Copy)]
struct Route {
    shard: u32,
    inner: SessionId,
}

/// Per-shard scratch of one [`Sharded::observe_batch`] tick: the shard's
/// slice of the tick's events, the original event indices (for scattering
/// labels back in caller order) and the shard's label output.
#[derive(Debug, Default)]
struct ShardLane {
    events: Vec<(SessionId, SegmentId)>,
    idx: Vec<u32>,
    out: Vec<u8>,
}

/// Shards any [`SessionEngine`] across N independent instances, scaling
/// session serving across cores with zero shared mutable state.
///
/// New sessions are hashed to a shard on `open`; from then on every event
/// of that session goes to the same shard, so per-shard event order equals
/// per-session event order and the [`SessionEngine`] contract (interleaving
/// never changes labels) lifts to the sharded engine: labels are
/// **byte-identical for every shard count**, including 1 (property-tested
/// in `tests/sharded.rs`).
///
/// [`Sharded::observe_batch`] is the tick-parallel drive path: the tick's
/// events are partitioned by shard and the shards advance concurrently on
/// up to `threads` scoped worker threads (`std::thread::scope` — no
/// channels, no pools, no dependencies). Shards share whatever their
/// constructor shared (e.g. one `Arc` of model weights), so memory grows
/// only with per-shard scratch, not with model copies.
///
/// The scoped threads are re-spawned every tick — the price of accepting
/// non-`'static` engines (the borrowing baselines) behind a `&mut self`
/// call. When the engines are `Send + 'static`, prefer the async
/// [`crate::ingest::IngestFrontDoor`]: it owns one **persistent** worker
/// thread per shard (spawned once, never per tick) which also owns the
/// per-shard event/label scratch as reused allocations — the `ShardLane`
/// buffers below, promoted out of the hot path.
pub struct Sharded<E> {
    shards: Vec<E>,
    routes: SessionSlab<Route>,
    threads: usize,
    lanes: Vec<ShardLane>,
}

impl<E: SessionEngine> Sharded<E> {
    /// Builds a sharded engine from pre-constructed shards (at least one).
    /// Defaults to one worker thread per shard; see [`Sharded::with_threads`].
    pub fn from_shards(shards: Vec<E>) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        let threads = shards.len();
        let lanes = shards.iter().map(|_| ShardLane::default()).collect();
        Sharded {
            shards,
            routes: SessionSlab::new(),
            threads,
            lanes,
        }
    }

    /// Builds `n` shards from a factory called with each shard index.
    pub fn build(n: usize, mut factory: impl FnMut(usize) -> E) -> Self {
        Self::from_shards((0..n).map(&mut factory).collect())
    }

    /// Caps the worker threads used per [`Sharded::observe_batch`] tick
    /// (clamped to `1..=num_shards`; `1` disables spawning entirely).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.clamp(1, self.shards.len());
        self
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Worker-thread cap for the tick-parallel drive path.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shards, for per-shard inspection (stats aggregation etc.).
    pub fn shards(&self) -> &[E] {
        &self.shards
    }

    /// Mutable access to the shards, for control operations applied
    /// between ticks (e.g. broadcasting a model hot-swap to every shard —
    /// see `rl4oasd::ShardedEngine::swap_model`). Holding `&mut self`
    /// guarantees no tick is in flight, so this is always a tick boundary.
    pub fn shards_mut(&mut self) -> &mut [E] {
        &mut self.shards
    }

    /// Which shard serves the given open session.
    ///
    /// # Panics
    /// Panics on unknown or closed handles.
    pub fn shard_of(&self, session: SessionId) -> usize {
        self.routes.get(session).shard as usize
    }

    /// Fibonacci-hashes a fresh route index onto a shard.
    fn hash_to_shard(&self, index: usize) -> u32 {
        let h = (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) % self.shards.len() as u64) as u32
    }
}

impl<E: SessionEngine + Send> SessionEngine for Sharded<E> {
    fn engine_name(&self) -> &'static str {
        self.shards[0].engine_name()
    }

    fn open(&mut self, sd: SdPair, start_time: f64) -> SessionId {
        // Reserve the outer handle first so the shard is a pure hash of it.
        let outer = self.routes.insert(Route {
            shard: 0,
            inner: SessionId::new(0, 0),
        });
        let shard = self.hash_to_shard(outer.index());
        let inner = self.shards[shard as usize].open(sd, start_time);
        *self.routes.get_mut(outer) = Route { shard, inner };
        outer
    }

    fn open_scoped(&mut self, scope: u32, sd: SdPair, start_time: f64) -> SessionId {
        let outer = self.routes.insert(Route {
            shard: 0,
            inner: SessionId::new(0, 0),
        });
        let shard = self.hash_to_shard(outer.index());
        let inner = self.shards[shard as usize].open_scoped(scope, sd, start_time);
        *self.routes.get_mut(outer) = Route { shard, inner };
        outer
    }

    fn observe(&mut self, session: SessionId, segment: SegmentId) -> u8 {
        let route = *self.routes.get(session);
        self.shards[route.shard as usize].observe(route.inner, segment)
    }

    /// Tick-parallel drive: partitions the tick's events by shard and
    /// advances every shard with events concurrently (each through its own
    /// `observe_batch`, so batched nn kernels still apply within a shard),
    /// then scatters the labels back into caller order.
    fn observe_batch(&mut self, events: &[(SessionId, SegmentId)], out: &mut Vec<u8>) {
        for lane in &mut self.lanes {
            lane.events.clear();
            lane.idx.clear();
            // Cleared here, not by the shard: a shard with no events this
            // tick never runs, and its stale labels must not linger.
            lane.out.clear();
        }
        for (i, &(session, segment)) in events.iter().enumerate() {
            let route = *self.routes.get(session);
            let lane = &mut self.lanes[route.shard as usize];
            lane.events.push((route.inner, segment));
            lane.idx.push(i as u32);
        }

        let mut active: Vec<(&mut E, &mut ShardLane)> = self
            .shards
            .iter_mut()
            .zip(self.lanes.iter_mut())
            .filter(|(_, lane)| !lane.events.is_empty())
            .collect();
        if active.len() <= 1 || self.threads <= 1 {
            for (shard, lane) in active {
                shard.observe_batch(&lane.events, &mut lane.out);
            }
        } else {
            // One scoped worker per chunk of shards; the current thread
            // takes the first chunk, saving one spawn per tick.
            let workers = self.threads.min(active.len());
            let per = active.len().div_ceil(workers);
            std::thread::scope(|scope| {
                let mut chunks = active.chunks_mut(per);
                let first = chunks.next().expect("at least one active shard");
                for chunk in chunks {
                    scope.spawn(move || {
                        for (shard, lane) in chunk {
                            shard.observe_batch(&lane.events, &mut lane.out);
                        }
                    });
                }
                for (shard, lane) in first {
                    shard.observe_batch(&lane.events, &mut lane.out);
                }
            });
        }

        out.clear();
        out.resize(events.len(), 0);
        for lane in &self.lanes {
            debug_assert_eq!(lane.out.len(), lane.events.len());
            for (k, &i) in lane.idx.iter().enumerate() {
                out[i as usize] = lane.out[k];
            }
        }
    }

    fn close(&mut self, session: SessionId) -> Vec<u8> {
        let route = self.routes.remove(session);
        self.shards[route.shard as usize].close(route.inner)
    }

    /// Broadcasts maintenance to every shard. Holding `&mut self` means
    /// no tick is in flight, so this is always a tick boundary.
    fn maintain(&mut self) {
        for shard in &mut self.shards {
            shard.maintain();
        }
    }

    /// Shards are homogeneous, so any shard's validity check speaks for
    /// the whole engine.
    fn admit(&self, segment: SegmentId) -> bool {
        self.shards[0].admit(segment)
    }

    fn active_sessions(&self) -> usize {
        self.routes.len()
    }
}

/// Lifts an [`OnlineDetector`] factory to a [`SessionEngine`]: each session
/// owns one detector value produced by the factory.
///
/// This is how the baselines (IBOAT, DBTOD, CTSS, the GM-VSAE family via
/// `Thresholded`) gain the session API without per-detector changes —
/// their heavy fitted state lives behind `Arc`s, so per-session values are
/// cheap. Per-session labels are identical to the per-trajectory path by
/// construction.
pub struct SessionMux<D, F> {
    name: &'static str,
    factory: F,
    sessions: SessionSlab<D>,
}

impl<D: OnlineDetector, F: FnMut() -> D> SessionMux<D, F> {
    /// Builds a mux around a detector factory. One probe detector is
    /// created (and dropped) to capture the method name; when the factory
    /// produces heavyweight detectors, prefer [`SessionMux::named`].
    pub fn new(mut factory: F) -> Self {
        let name = factory().name();
        Self::named(name, factory)
    }

    /// Builds a mux with an explicit engine name, skipping the probe
    /// construction (for factories whose detectors are expensive to
    /// build, e.g. ones copying trained model weights).
    pub fn named(name: &'static str, factory: F) -> Self {
        SessionMux {
            name,
            factory,
            sessions: SessionSlab::new(),
        }
    }
}

impl<D: OnlineDetector, F: FnMut() -> D> SessionEngine for SessionMux<D, F> {
    fn engine_name(&self) -> &'static str {
        self.name
    }

    fn open(&mut self, sd: SdPair, start_time: f64) -> SessionId {
        let mut detector = (self.factory)();
        detector.begin(sd, start_time);
        self.sessions.insert(detector)
    }

    fn observe(&mut self, session: SessionId, segment: SegmentId) -> u8 {
        self.sessions.get_mut(session).observe(segment)
    }

    fn close(&mut self, session: SessionId) -> Vec<u8> {
        self.sessions.remove(session).finish()
    }

    fn active_sessions(&self) -> usize {
        self.sessions.len()
    }
}

/// Wraps a [`SessionEngine`] into an [`OnlineDetector`] driving exactly one
/// session at a time — the per-trajectory trait as a thin view of the
/// fleet-scale engine.
pub struct SingleSession<E: SessionEngine> {
    engine: E,
    current: Option<SessionId>,
}

impl<E: SessionEngine> SingleSession<E> {
    /// Wraps an engine.
    pub fn new(engine: E) -> Self {
        SingleSession {
            engine,
            current: None,
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Unwraps the engine, abandoning any open session.
    pub fn into_engine(mut self) -> E {
        if let Some(session) = self.current.take() {
            self.engine.close(session);
        }
        self.engine
    }
}

impl<E: SessionEngine> OnlineDetector for SingleSession<E> {
    fn name(&self) -> &'static str {
        self.engine.engine_name()
    }

    fn begin(&mut self, sd: SdPair, start_time: f64) {
        if let Some(previous) = self.current.take() {
            self.engine.close(previous);
        }
        self.current = Some(self.engine.open(sd, start_time));
    }

    fn observe(&mut self, segment: SegmentId) -> u8 {
        let session = self.current.expect("observe before begin");
        self.engine.observe(session, segment)
    }

    fn finish(&mut self) -> Vec<u8> {
        let session = self.current.take().expect("finish before begin");
        self.engine.close(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::AlwaysNormal;
    use crate::types::{MappedTrajectory, TrajectoryId};

    fn sd(a: u32, b: u32) -> SdPair {
        SdPair {
            source: SegmentId(a),
            dest: SegmentId(b),
        }
    }

    #[test]
    fn slab_insert_get_remove() {
        let mut slab = SessionSlab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(*slab.get_mut(a), "a");
        assert_eq!(slab.remove(a), "a");
        assert_eq!(slab.len(), 1);
        assert_eq!(*slab.get_mut(b), "b");
        // slot reuse with a fresh generation
        let c = slab.insert("c");
        assert_eq!(c.index(), a.index());
        assert_ne!(c, a);
    }

    #[test]
    #[should_panic(expected = "stale session")]
    fn slab_rejects_stale_handles() {
        let mut slab = SessionSlab::new();
        let a = slab.insert(1);
        slab.remove(a);
        let _b = slab.insert(2); // reuses the slot
        slab.get_mut(a);
    }

    #[test]
    fn slab_take_and_restore() {
        let mut slab = SessionSlab::new();
        let a = slab.insert(vec![1, 2]);
        let v = slab.take(a);
        assert_eq!(slab.len(), 1, "taken sessions stay live");
        slab.restore(a, v);
        assert_eq!(*slab.get_mut(a), vec![1, 2]);
        assert_eq!(*slab.get(a), vec![1, 2]);
    }

    #[test]
    fn slab_survives_repeated_take_restore_remove_cycles() {
        let mut slab = SessionSlab::new();
        let mut ids = Vec::new();
        for cycle in 0..4 {
            // Refill the slab, exercising the free list left by the
            // previous cycle's removals.
            for k in 0..8 {
                ids.push(slab.insert(cycle * 8 + k));
            }
            assert_eq!(slab.len(), 8);
            // A couple of take/restore round-trips on every live session.
            for &id in &ids {
                let v = slab.take(id);
                slab.restore(id, v);
                let v = slab.take(id);
                slab.restore(id, v + 100);
            }
            for (k, id) in ids.drain(..).enumerate() {
                assert_eq!(slab.remove(id), cycle * 8 + k as i32 + 100);
            }
            assert!(slab.is_empty());
        }
    }

    #[test]
    fn slab_reuses_ids_with_fresh_generations_after_remove() {
        let mut slab = SessionSlab::new();
        let first: Vec<_> = (0..4).map(|k| slab.insert(k)).collect();
        for &id in &first {
            slab.remove(id);
        }
        let second: Vec<_> = (10..14).map(|k| slab.insert(k)).collect();
        // All four slots are reused (LIFO over the free list), but every
        // reused handle differs from its predecessor by generation.
        let mut first_idx: Vec<_> = first.iter().map(|id| id.index()).collect();
        let mut second_idx: Vec<_> = second.iter().map(|id| id.index()).collect();
        first_idx.sort_unstable();
        second_idx.sort_unstable();
        assert_eq!(first_idx, second_idx, "slots were not reused");
        for (old, new) in first.iter().zip(second.iter().rev()) {
            assert_eq!(old.index(), new.index());
            assert_ne!(old.generation(), new.generation());
            assert_ne!(old, new);
        }
    }

    #[test]
    #[should_panic(expected = "stale session")]
    fn slab_get_mut_on_removed_id_panics() {
        let mut slab = SessionSlab::new();
        let a = slab.insert(1);
        slab.remove(a);
        slab.get_mut(a);
    }

    #[test]
    #[should_panic(expected = "stale session")]
    fn slab_take_on_removed_id_panics() {
        let mut slab = SessionSlab::new();
        let a = slab.insert(1);
        slab.remove(a);
        slab.take(a);
    }

    #[test]
    #[should_panic(expected = "is taken or closed")]
    fn slab_take_twice_panics() {
        let mut slab = SessionSlab::new();
        let a = slab.insert(1);
        let _v = slab.take(a);
        slab.take(a);
    }

    #[test]
    #[should_panic(expected = "was not taken")]
    fn slab_restore_without_take_panics() {
        let mut slab = SessionSlab::new();
        let a = slab.insert(1);
        slab.restore(a, 2);
    }

    #[test]
    #[should_panic(expected = "unknown session")]
    fn slab_get_on_never_issued_id_panics() {
        let slab: SessionSlab<i32> = SessionSlab::new();
        slab.get(SessionId::new(7, 0));
    }

    /// Trivial [`Hibernate`] impl for slab-level tests: the string's
    /// bytes, no context.
    impl Hibernate<()> for String {
        fn freeze(&self, _ctx: &(), out: &mut Vec<u8>) {
            out.extend_from_slice(self.as_bytes());
        }
        fn thaw(_ctx: &(), bytes: &[u8]) -> Self {
            String::from_utf8(bytes.to_vec()).unwrap()
        }
    }

    #[test]
    fn slab_freeze_thaw_roundtrip() {
        let mut slab = SessionSlab::new();
        let a = slab.insert("alpha".to_string());
        let b = slab.insert("beta".to_string());
        assert_eq!(slab.frozen_len(), 0);
        assert_eq!(slab.resident_len(), 2);

        slab.hibernate(a, &());
        assert!(slab.is_frozen(a));
        assert!(!slab.is_frozen(b));
        assert_eq!(slab.frozen_len(), 1);
        assert_eq!(slab.resident_len(), 1);
        assert_eq!(slab.len(), 2, "frozen sessions stay live");
        assert_eq!(slab.frozen_bytes(), "alpha".len());

        slab.rehydrate(a, &());
        assert!(!slab.is_frozen(a));
        assert_eq!(slab.frozen_len(), 0);
        assert_eq!(slab.frozen_bytes(), 0);
        assert_eq!(*slab.get(a), "alpha");
        assert_eq!(slab.remove(a), "alpha");
        assert_eq!(slab.remove(b), "beta");
    }

    #[test]
    fn slab_iter_hot_skips_frozen_and_taken() {
        let mut slab = SessionSlab::new();
        let a = slab.insert("a".to_string());
        let b = slab.insert("b".to_string());
        let c = slab.insert("c".to_string());
        slab.hibernate(b, &());
        let taken = slab.take(c);
        let hot: Vec<_> = slab.iter_hot().map(|(id, v)| (id, v.clone())).collect();
        assert_eq!(hot, vec![(a, "a".to_string())]);
        slab.restore(c, taken);
        assert_eq!(slab.iter_hot().count(), 2);
    }

    #[test]
    #[should_panic(expected = "is hibernated")]
    fn slab_take_while_frozen_panics() {
        let mut slab = SessionSlab::new();
        let a = slab.insert("a".to_string());
        slab.hibernate(a, &());
        slab.take(a);
    }

    #[test]
    #[should_panic(expected = "is hibernated")]
    fn slab_get_while_frozen_panics() {
        let mut slab = SessionSlab::new();
        let a = slab.insert("a".to_string());
        slab.hibernate(a, &());
        slab.get(a);
    }

    #[test]
    #[should_panic(expected = "is hibernated")]
    fn slab_remove_while_frozen_panics() {
        let mut slab = SessionSlab::new();
        let a = slab.insert("a".to_string());
        slab.hibernate(a, &());
        slab.remove(a);
    }

    #[test]
    #[should_panic(expected = "is already hibernated")]
    fn slab_double_freeze_panics() {
        let mut slab = SessionSlab::new();
        let a = slab.insert("a".to_string());
        slab.hibernate(a, &());
        slab.hibernate(a, &());
    }

    #[test]
    #[should_panic(expected = "is taken or closed")]
    fn slab_freeze_while_taken_panics() {
        let mut slab = SessionSlab::new();
        let a = slab.insert("a".to_string());
        let _v = slab.take(a);
        slab.hibernate(a, &());
    }

    #[test]
    #[should_panic(expected = "is not hibernated")]
    fn slab_thaw_of_hot_session_panics() {
        let mut slab = SessionSlab::new();
        let a = slab.insert("a".to_string());
        slab.rehydrate(a, &());
    }

    #[test]
    #[should_panic(expected = "stale session")]
    fn slab_stale_generation_on_hibernated_slot_panics() {
        let mut slab = SessionSlab::new();
        let a = slab.insert("first".to_string());
        slab.remove(a);
        // Reincarnate the slot and hibernate the new tenant: the old
        // handle must still die on the generation check, not reach the
        // frozen blob.
        let b = slab.insert("second".to_string());
        assert_eq!(a.index(), b.index());
        slab.hibernate(b, &());
        slab.is_frozen(a);
    }

    #[test]
    fn slab_frozen_sessions_survive_take_restore_of_others() {
        let mut slab = SessionSlab::new();
        let a = slab.insert("frozen".to_string());
        let b = slab.insert("hot".to_string());
        slab.hibernate(a, &());
        let v = slab.take(b);
        slab.restore(b, v);
        slab.rehydrate(a, &());
        assert_eq!(*slab.get(a), "frozen");
        assert_eq!(*slab.get(b), "hot");
    }

    #[test]
    fn slab_shrinks_capacity_after_burst() {
        let mut slab = SessionSlab::new();
        let ids: Vec<_> = (0..10_000).map(|k| slab.insert(k)).collect();
        assert_eq!(slab.capacity(), 10_000);
        for &id in &ids {
            slab.remove(id);
        }
        assert!(slab.is_empty());
        assert!(
            slab.capacity() <= MIN_SHRINK_CAPACITY,
            "burst capacity was pinned: {} slots",
            slab.capacity()
        );
        // The slab keeps working after shrinking.
        let id = slab.insert(42);
        assert_eq!(*slab.get(id), 42);
    }

    #[test]
    fn slab_shrink_keeps_live_tail_sessions() {
        let mut slab = SessionSlab::new();
        let ids: Vec<_> = (0..8192).map(|k| slab.insert(k)).collect();
        // Keep a survivor near (but not at) the tail; everything else goes.
        let survivor = ids[8000];
        for &id in &ids {
            if id != survivor {
                slab.remove(id);
            }
        }
        assert_eq!(slab.len(), 1);
        assert_eq!(*slab.get(survivor), 8000);
        // The tail beyond the survivor is reclaimed; the survivor pins
        // everything at or below its index.
        assert!(slab.capacity() > 8000 && slab.capacity() <= 8192);
        slab.remove(survivor);
        assert!(slab.capacity() <= MIN_SHRINK_CAPACITY);
    }

    #[test]
    #[should_panic(expected = "stale session")]
    fn slab_shrink_never_resurrects_old_handles() {
        let mut slab = SessionSlab::new();
        let ids: Vec<_> = (0..4096).map(|k| slab.insert(k)).collect();
        let ghost = ids[4000]; // lives in the to-be-truncated tail
        for &id in &ids {
            slab.remove(id);
        }
        assert!(slab.capacity() < 4000, "tail was not truncated");
        // Regrow past the ghost's index: its slot is reincarnated with a
        // generation above the floor, so the ghost must read as stale —
        // never as the new tenant.
        let regrown: Vec<_> = (0..4096).map(|k| slab.insert(k + 10_000)).collect();
        let reincarnated = regrown.iter().find(|id| id.index() == ghost.index());
        assert!(reincarnated.is_some());
        assert_ne!(
            *reincarnated.unwrap(),
            ghost,
            "handle aliasing after shrink"
        );
        slab.get(ghost);
    }

    #[test]
    fn mux_sessions_are_independent() {
        let mut mux = SessionMux::new(AlwaysNormal::default);
        assert_eq!(mux.engine_name(), "AlwaysNormal");
        let s1 = mux.open(sd(0, 9), 0.0);
        let s2 = mux.open(sd(1, 8), 0.0);
        assert_eq!(mux.active_sessions(), 2);
        mux.observe(s1, SegmentId(0));
        mux.observe(s2, SegmentId(1));
        mux.observe(s1, SegmentId(5));
        assert_eq!(mux.close(s1).len(), 2);
        assert_eq!(mux.close(s2).len(), 1);
        assert_eq!(mux.active_sessions(), 0);
    }

    #[test]
    fn default_observe_batch_matches_sequential() {
        let mut mux = SessionMux::new(AlwaysNormal::default);
        let s1 = mux.open(sd(0, 9), 0.0);
        let s2 = mux.open(sd(1, 8), 0.0);
        let events = vec![
            (s1, SegmentId(0)),
            (s2, SegmentId(1)),
            (s1, SegmentId(2)),
            (s1, SegmentId(9)),
        ];
        let mut out = Vec::new();
        mux.observe_batch(&events, &mut out);
        assert_eq!(out, vec![0, 0, 0, 0]);
        assert_eq!(mux.close(s1).len(), 3);
        assert_eq!(mux.close(s2).len(), 1);
    }

    /// Labels each segment by parity and echoes the history on finish —
    /// discriminative enough to catch routing or ordering mistakes.
    #[derive(Default)]
    struct Parity {
        labels: Vec<u8>,
    }

    impl OnlineDetector for Parity {
        fn name(&self) -> &'static str {
            "Parity"
        }
        fn begin(&mut self, _sd: SdPair, _start_time: f64) {
            self.labels.clear();
        }
        fn observe(&mut self, segment: SegmentId) -> u8 {
            let label = (segment.0 & 1) as u8;
            self.labels.push(label);
            label
        }
        fn finish(&mut self) -> Vec<u8> {
            std::mem::take(&mut self.labels)
        }
    }

    #[test]
    fn sharded_mux_routes_and_orders_events() {
        let mut engine = Sharded::build(3, |_| SessionMux::new(Parity::default));
        assert_eq!(engine.num_shards(), 3);
        assert_eq!(engine.threads(), 3);
        assert_eq!(engine.engine_name(), "Parity");

        let handles: Vec<_> = (0..10).map(|k| engine.open(sd(k, k + 1), 0.0)).collect();
        assert_eq!(engine.active_sessions(), 10);
        for &h in &handles {
            // Routing is stable: repeated queries agree, and the shard is
            // in range.
            assert_eq!(engine.shard_of(h), engine.shard_of(h));
            assert!(engine.shard_of(h) < 3);
        }

        // One tick with duplicates: session 0 appears three times; labels
        // must come back in event order (parity of each segment).
        let events = vec![
            (handles[0], SegmentId(2)),
            (handles[1], SegmentId(3)),
            (handles[0], SegmentId(5)),
            (handles[2], SegmentId(4)),
            (handles[0], SegmentId(7)),
        ];
        let mut out = Vec::new();
        engine.observe_batch(&events, &mut out);
        assert_eq!(out, vec![0, 1, 1, 0, 1]);

        // Scalar observes interleave with batched ticks on the same shard.
        assert_eq!(engine.observe(handles[1], SegmentId(8)), 0);

        // Per-session history survives routing: close returns the labels
        // in per-session order.
        assert_eq!(engine.close(handles[0]), vec![0, 1, 1]);
        assert_eq!(engine.close(handles[1]), vec![1, 0]);
        assert_eq!(engine.close(handles[2]), vec![0]);
        for &h in &handles[3..] {
            assert!(engine.close(h).is_empty());
        }
        assert_eq!(engine.active_sessions(), 0);
    }

    #[test]
    fn sharded_spreads_sessions_and_clamps_threads() {
        let mut engine =
            Sharded::build(4, |_| SessionMux::new(AlwaysNormal::default)).with_threads(64);
        assert_eq!(engine.threads(), 4, "threads clamp to the shard count");
        let mut per_shard = [0usize; 4];
        let handles: Vec<_> = (0..64).map(|_| engine.open(sd(0, 9), 0.0)).collect();
        for &h in &handles {
            per_shard[engine.shard_of(h)] += 1;
        }
        assert!(
            per_shard.iter().all(|&n| n > 0),
            "64 sessions left a shard empty: {per_shard:?}"
        );
        for h in handles {
            engine.close(h);
        }
        let single = Sharded::build(1, |_| SessionMux::new(AlwaysNormal::default));
        assert_eq!(single.with_threads(0).threads(), 1);
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn sharded_rejects_zero_shards() {
        let _ = Sharded::build(0, |_| SessionMux::new(AlwaysNormal::default));
    }

    #[test]
    #[should_panic(expected = "stale session")]
    fn sharded_rejects_closed_handles() {
        let mut engine = Sharded::build(2, |_| SessionMux::new(AlwaysNormal::default));
        let h = engine.open(sd(0, 9), 0.0);
        engine.close(h);
        engine.observe(h, SegmentId(0));
    }

    #[test]
    fn single_session_adapter_behaves_like_detector() {
        let t = MappedTrajectory {
            id: TrajectoryId(0),
            segments: vec![SegmentId(0), SegmentId(1), SegmentId(2)],
            start_time: 0.0,
        };
        let mut adapter = SingleSession::new(SessionMux::new(AlwaysNormal::default));
        assert_eq!(adapter.label_trajectory(&t), vec![0, 0, 0]);
        // reusable: begin closes the previous session implicitly
        adapter.begin(sd(0, 2), 0.0);
        adapter.observe(SegmentId(0));
        assert_eq!(adapter.label_trajectory(&t), vec![0, 0, 0]);
        assert_eq!(adapter.engine().active_sessions(), 0);
    }
}
