//! Deterministic event traces: the bridge between a scenario spec and the
//! serving engines.
//!
//! [`EventTrace::generate`] expands a `(seed, spec)` pair over a
//! [`World`] into the exact tick-by-tick stream of session opens, point
//! observations and closes — plus per-session ground truth aligned with
//! the *emitted* points (dropout skips a point in both). Generation is a
//! pure function of its arguments: the only randomness is a single
//! `StdRng` seeded from `seed`, consumed in a fixed order, so two calls
//! with equal arguments produce equal traces (`PartialEq`), equal
//! [`EventTrace::digest`]s, and therefore byte-identical engine runs.

use crate::spec::{Regime, ScenarioSpec};
use crate::world::World;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnet::SegmentId;
use traj::{SdPair, SECONDS_PER_DAY};

/// All events of one scenario tick, in application order: opens first,
/// then one `observe_batch` of points, then closes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TickEvents {
    /// Sessions opened this tick: `(scenario session id, SD pair, start
    /// time in seconds since midnight)`.
    pub opens: Vec<(u32, SdPair, f64)>,
    /// Points observed this tick (at most one per session).
    pub points: Vec<(u32, SegmentId)>,
    /// Sessions closed this tick (their route is exhausted).
    pub closes: Vec<u32>,
}

/// A fully expanded scenario: the event stream and its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct EventTrace {
    /// Tick-by-tick events. The last tick is a drain tick closing every
    /// session still open when the scenario's tick budget ran out.
    pub ticks: Vec<TickEvents>,
    /// Ground truth per session (indexed by scenario session id), aligned
    /// with that session's *emitted* points. Zero-length sessions (all
    /// points dropped) have an empty truth vector.
    pub truth: Vec<Vec<u8>>,
    /// Total number of sessions opened.
    pub sessions: u32,
    /// Total number of emitted points.
    pub events: u64,
}

/// One in-flight simulated trip.
struct Live {
    id: u32,
    pair: usize,
    regime: usize,
    route: usize,
    pos: usize,
}

/// One MTTH incident recurrence machine (one per `Regime::Incidents`).
struct IncidentMachine {
    mtth: f64,
    duration: u32,
    cooldown: u32,
    detour_prob: f64,
    /// `Some((until_tick, pair))` while an incident is active.
    active: Option<(u32, usize)>,
    /// First tick at which a new incident may start.
    eligible_at: u32,
}

impl IncidentMachine {
    /// Advances the machine to tick `t`, possibly starting an incident.
    /// Mirrors the classic `generate_anomaly`/`CarAccident` pattern: once
    /// past the cooldown, start probability grows as
    /// `1 - 2^(-elapsed / mtth)`.
    fn step(&mut self, t: u32, num_pairs: usize, rng: &mut StdRng) {
        if let Some((until, _)) = self.active {
            if t < until {
                return;
            }
            self.active = None;
            self.eligible_at = until + self.cooldown;
        }
        if t < self.eligible_at {
            return;
        }
        let elapsed = (t - self.eligible_at) as f64 + 1.0;
        let prob = 1.0 - (-elapsed / self.mtth.max(1e-9)).exp2();
        if rng.gen::<f64>() < prob {
            let pair = rng.gen_range(0..num_pairs);
            self.active = Some((t + self.duration.max(1), pair));
        }
    }

    /// Detour probability this machine imposes on `pair` right now.
    fn detour_prob_for(&self, pair: usize) -> Option<f64> {
        match self.active {
            Some((_, p)) if p == pair => Some(self.detour_prob),
            _ => None,
        }
    }
}

impl EventTrace {
    /// Expands `(seed, spec)` over `world` into the full event trace.
    ///
    /// # Panics
    /// Panics if the spec names a different network than the world was
    /// built for — a trace is only meaningful on the world whose route
    /// families labelled it.
    pub fn generate(world: &World, spec: &ScenarioSpec, seed: u64) -> EventTrace {
        assert_eq!(
            world.kind, spec.network,
            "scenario '{}' targets {:?} but the world is {:?}",
            spec.name, spec.network, world.kind
        );
        let pairs = &world.pairs;
        assert!(!pairs.is_empty(), "world has no SD pairs");
        let mut rng = StdRng::seed_from_u64(seed);

        // Per-pair, per-regime normal route indices and segment sets,
        // precomputed once.
        let normal_idx: Vec<[Vec<usize>; 2]> = pairs
            .iter()
            .map(|p| [p.normal_route_indices(0), p.normal_route_indices(1)])
            .collect();
        let normal_set: Vec<[std::collections::HashSet<SegmentId>; 2]> = pairs
            .iter()
            .map(|p| [p.normal_segment_set(0), p.normal_segment_set(1)])
            .collect();

        // Standing hotspots: per-pair detour probability floor.
        let mut hotspot = vec![0.0f64; pairs.len()];
        for regime in &spec.regimes {
            if let Regime::Hotspot {
                hot_pair_fraction,
                detour_prob,
            } = regime
            {
                let n = ((pairs.len() as f64) * hot_pair_fraction).ceil() as usize;
                for h in hotspot.iter_mut().take(n.min(pairs.len())) {
                    *h = h.max(*detour_prob);
                }
            }
        }

        // Incident recurrence machines, one per Incidents regime.
        let mut incidents: Vec<IncidentMachine> = spec
            .regimes
            .iter()
            .filter_map(|r| match *r {
                Regime::Incidents {
                    mtth,
                    duration,
                    cooldown,
                    detour_prob,
                } => Some(IncidentMachine {
                    mtth,
                    duration,
                    cooldown,
                    detour_prob,
                    active: None,
                    eligible_at: 0,
                }),
                _ => None,
            })
            .collect();

        let drift_at: Option<u32> = spec
            .regimes
            .iter()
            .filter_map(|r| match *r {
                Regime::DriftSwitch { at_tick } => Some(at_tick),
                _ => None,
            })
            .min();

        let mut ticks = Vec::with_capacity(spec.ticks as usize + 1);
        let mut truth: Vec<Vec<u8>> = Vec::new();
        let mut live: Vec<Live> = Vec::new();
        let mut next_id = 0u32;
        let mut events = 0u64;
        let mut arrival_acc = 0.0f64;

        for t in 0..spec.ticks {
            let mut tick = TickEvents::default();

            for m in &mut incidents {
                m.step(t, pairs.len(), &mut rng);
            }

            // Arrival rate this tick: base, raised by any active wave.
            let mut rate = spec.arrivals_per_tick;
            for regime in &spec.regimes {
                if let Regime::ArrivalWave {
                    period,
                    offset,
                    len,
                    peak,
                } = *regime
                {
                    let phase = t % period.max(1);
                    if phase >= offset && phase < offset.saturating_add(len) {
                        rate = rate.max(peak);
                    }
                }
            }

            // Dropout probability this tick (max over active bursts).
            let mut drop_prob = 0.0f64;
            for regime in &spec.regimes {
                if let Regime::Dropout {
                    period,
                    burst_len,
                    drop_prob: p,
                } = *regime
                {
                    if t % period.max(1) < burst_len {
                        drop_prob = drop_prob.max(p);
                    }
                }
            }

            // Spawn new sessions.
            arrival_acc += rate;
            while arrival_acc >= 1.0 {
                arrival_acc -= 1.0;
                let regime = usize::from(drift_at.is_some_and(|at| t >= at));
                let pair_idx = rng.gen_range(0..pairs.len());
                let pair = &pairs[pair_idx];

                // Detour probability: base anomaly ratio, raised by a
                // standing hotspot or an active incident on this pair.
                let mut p_detour = world.traffic.anomaly_ratio.max(hotspot[pair_idx]);
                for m in &incidents {
                    if let Some(p) = m.detour_prob_for(pair_idx) {
                        p_detour = p_detour.max(p);
                    }
                }

                let normals = &normal_idx[pair_idx][regime];
                let anomalous: Vec<usize> = (0..pair.routes.len())
                    .filter(|i| !normals.contains(i))
                    .collect();
                let route = if !anomalous.is_empty() && rng.gen::<f64>() < p_detour {
                    anomalous[rng.gen_range(0..anomalous.len())]
                } else {
                    // Popularity-weighted choice among regime-normal
                    // routes (positional weights, as in the simulator).
                    let w = &pair.normal_popularity;
                    let total: f64 = w.iter().take(normals.len()).sum();
                    let mut x = rng.gen::<f64>() * total;
                    let mut chosen = *normals.last().expect("at least one normal route");
                    for (k, &ri) in normals.iter().enumerate() {
                        let wk = w.get(k).copied().unwrap_or(1e-9);
                        if x < wk {
                            chosen = ri;
                            break;
                        }
                        x -= wk;
                    }
                    chosen
                };

                // Start time: the trace's tick clock mapped onto a day,
                // with per-session jitter.
                let frac = t as f64 / spec.ticks.max(1) as f64;
                let start_time =
                    (frac * 0.9 * SECONDS_PER_DAY + rng.gen_range(0.0..60.0)) % SECONDS_PER_DAY;

                let id = next_id;
                next_id += 1;
                truth.push(Vec::new());
                tick.opens.push((id, pair.pair, start_time));
                live.push(Live {
                    id,
                    pair: pair_idx,
                    regime,
                    route,
                    pos: 0,
                });
            }

            // Advance every live session one route position (in open
            // order); a point lands in the batch unless dropped.
            let mut finished: Vec<usize> = Vec::new();
            for (k, s) in live.iter_mut().enumerate() {
                let segs = &pairs[s.pair].routes[s.route].segments;
                let seg = segs[s.pos];
                s.pos += 1;
                let dropped = drop_prob > 0.0 && rng.gen::<f64>() < drop_prob;
                if !dropped {
                    tick.points.push((s.id, seg));
                    let anomalous = !normal_set[s.pair][s.regime].contains(&seg);
                    truth[s.id as usize].push(u8::from(anomalous));
                    events += 1;
                }
                if s.pos == segs.len() {
                    finished.push(k);
                }
            }
            for &k in finished.iter().rev() {
                tick.closes.push(live[k].id);
                live.remove(k);
            }
            tick.closes.sort_unstable();

            ticks.push(tick);
        }

        // Drain tick: close everything still open.
        let mut drain = TickEvents::default();
        for s in &live {
            drain.closes.push(s.id);
        }
        drain.closes.sort_unstable();
        ticks.push(drain);

        EventTrace {
            ticks,
            truth,
            sessions: next_id,
            events,
        }
    }

    /// Order-sensitive 64-bit digest of the whole trace (events + ground
    /// truth); equal traces have equal digests.
    pub fn digest(&self) -> u64 {
        let mut h = 0xA5A5_5A5A_DEAD_BEEFu64;
        let mut mix = |v: u64| h = splitmix64(h ^ v);
        for tick in &self.ticks {
            for &(id, sd, t0) in &tick.opens {
                mix(0x10_0000 | id as u64);
                mix(sd.source.0 as u64);
                mix(sd.dest.0 as u64);
                mix(t0.to_bits());
            }
            for &(id, seg) in &tick.points {
                mix(0x20_0000 | id as u64);
                mix(seg.0 as u64);
            }
            for &id in &tick.closes {
                mix(0x30_0000 | id as u64);
            }
            mix(0x40_0000); // tick boundary
        }
        for labels in &self.truth {
            for &l in labels {
                mix(0x50_0000 | l as u64);
            }
            mix(0x60_0000);
        }
        h
    }
}

/// SplitMix64 mixing step.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NetworkKind;

    fn tiny_spec(regimes: Vec<Regime>) -> ScenarioSpec {
        ScenarioSpec {
            name: "t".into(),
            network: NetworkKind::ChengduGrid,
            ticks: 40,
            arrivals_per_tick: 0.5,
            regimes,
        }
    }

    #[test]
    fn traces_replay_byte_identically() {
        let world = World::tiny(NetworkKind::ChengduGrid, 11);
        let spec = tiny_spec(vec![Regime::ArrivalWave {
            period: 10,
            offset: 2,
            len: 3,
            peak: 3.0,
        }]);
        let a = EventTrace::generate(&world, &spec, 99);
        let b = EventTrace::generate(&world, &spec, 99);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let c = EventTrace::generate(&world, &spec, 100);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn every_open_session_closes_exactly_once() {
        let world = World::tiny(NetworkKind::ChengduGrid, 12);
        let trace = EventTrace::generate(&world, &tiny_spec(vec![]), 1);
        assert!(trace.sessions > 0);
        let opens: u32 = trace.ticks.iter().map(|t| t.opens.len() as u32).sum();
        let closes: u32 = trace.ticks.iter().map(|t| t.closes.len() as u32).sum();
        assert_eq!(opens, trace.sessions);
        assert_eq!(closes, trace.sessions);
    }

    #[test]
    fn truth_aligns_with_emitted_points() {
        let world = World::tiny(NetworkKind::ChengduGrid, 13);
        let trace = EventTrace::generate(
            &world,
            &tiny_spec(vec![Regime::Dropout {
                period: 5,
                burst_len: 2,
                drop_prob: 0.7,
            }]),
            7,
        );
        let mut emitted = vec![0usize; trace.sessions as usize];
        for tick in &trace.ticks {
            for &(id, _) in &tick.points {
                emitted[id as usize] += 1;
            }
        }
        for (id, labels) in trace.truth.iter().enumerate() {
            assert_eq!(labels.len(), emitted[id]);
        }
        let total: usize = emitted.iter().sum();
        assert_eq!(total as u64, trace.events);
    }

    #[test]
    fn full_dropout_produces_zero_length_sessions() {
        let world = World::tiny(NetworkKind::ChengduGrid, 14);
        let trace = EventTrace::generate(
            &world,
            &tiny_spec(vec![Regime::Dropout {
                period: 1,
                burst_len: 1,
                drop_prob: 1.0,
            }]),
            7,
        );
        assert!(trace.sessions > 0);
        assert_eq!(trace.events, 0);
        assert!(trace.truth.iter().all(|t| t.is_empty()));
    }

    #[test]
    fn drift_switch_changes_truth_regime() {
        let world = World::tiny(NetworkKind::ChengduGrid, 15);
        let mut spec = tiny_spec(vec![Regime::DriftSwitch { at_tick: 20 }]);
        spec.ticks = 60;
        spec.arrivals_per_tick = 1.0;
        let trace = EventTrace::generate(&world, &spec, 3);
        // The drift switch consumes no extra RNG draws, so the no-drift
        // trace opens the same sessions — but post-switch sessions sample
        // and are labelled under regime 1 (roles swapped), so the ground
        // truth must differ somewhere.
        let no_drift = EventTrace::generate(
            &world,
            &{
                let mut s = spec.clone();
                s.regimes.clear();
                s
            },
            3,
        );
        assert_eq!(trace.sessions, no_drift.sessions);
        assert_ne!(
            trace.truth, no_drift.truth,
            "drift switchpoint never changed a label"
        );
    }

    #[test]
    fn incident_machine_eventually_fires_and_respects_duration() {
        let world = World::tiny(NetworkKind::ChengduGrid, 16);
        let mut spec = tiny_spec(vec![Regime::Incidents {
            mtth: 2.0,
            duration: 5,
            cooldown: 3,
            detour_prob: 1.0,
        }]);
        spec.ticks = 80;
        spec.arrivals_per_tick = 1.0;
        let with = EventTrace::generate(&world, &spec, 5);
        let base = EventTrace::generate(
            &world,
            &{
                let mut s = spec.clone();
                s.regimes.clear();
                s
            },
            5,
        );
        let mass =
            |tr: &EventTrace| -> usize { tr.truth.iter().flatten().filter(|&&l| l == 1).count() };
        // detour_prob 1.0 on the struck pair must raise anomalous mass
        // over the regime-free run of the same length and arrival rate.
        assert!(mass(&with) > mass(&base), "incidents never fired");
    }
}
