//! Scenario specifications: a named, serializable description of a
//! workload. Together with a `u64` seed, a [`ScenarioSpec`] fully
//! determines an event trace — see [`crate::EventTrace::generate`].

use serde::{Deserialize, Serialize};

/// Which synthetic city a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkKind {
    /// The paper's Chengdu-like imperfect grid (`rnet::CityBuilder`).
    ChengduGrid,
    /// The Porto-like ring-and-spoke city (`rnet::RadialCityBuilder`) —
    /// different topology *and* scale, so cross-network runs are a real
    /// generalisation test, not a re-run.
    PortoRadial,
}

impl NetworkKind {
    /// Stable label used in bench reports and scenario names.
    pub fn label(&self) -> &'static str {
        match self {
            NetworkKind::ChengduGrid => "chengdu_grid",
            NetworkKind::PortoRadial => "porto_radial",
        }
    }
}

/// One workload regime layered onto a scenario. Regimes compose: a spec
/// may stack a rush-hour wave on top of incident recurrence on top of
/// dropout bursts; each consumes draws from the single scenario RNG, so
/// the composition is still a pure function of `(seed, spec)`.
///
/// Serialised as a tagged map (`{"type": "arrival_wave", ...}`) — the
/// vendored serde derive only covers unit-variant enums, so the impls are
/// hand-written below.
#[derive(Debug, Clone, PartialEq)]
pub enum Regime {
    /// Rush-hour arrival waves: while `tick % period` falls in
    /// `[offset, offset + len)`, the session arrival rate is raised to
    /// `peak` sessions/tick (it never lowers the base rate).
    ArrivalWave {
        /// Wave period in ticks.
        period: u32,
        /// First tick (mod `period`) of the wave window.
        offset: u32,
        /// Wave window length in ticks.
        len: u32,
        /// Arrival rate during the wave, sessions per tick.
        peak: f64,
    },
    /// Incident injection with MTTH-style recurrence, after the
    /// `generate_anomaly`/`CarAccident` pattern of the classic traffic
    /// simulators: once the previous incident is over and `cooldown` ticks
    /// have passed, each tick starts a new incident with probability
    /// `1 - 2^(-elapsed / mtth)` where `elapsed` counts ticks since the
    /// cooldown expired. An active incident blocks one SD pair's normal
    /// corridor for `duration` ticks: sessions opening on that pair take a
    /// detour route with probability `detour_prob`.
    Incidents {
        /// Mean time to happen, in ticks (half-life of the geometric-ish
        /// start distribution).
        mtth: f64,
        /// How long each incident lasts, in ticks.
        duration: u32,
        /// Minimum quiet gap after an incident ends, in ticks.
        cooldown: u32,
        /// Detour probability for sessions on the affected pair while the
        /// incident is active.
        detour_prob: f64,
    },
    /// A standing detour hotspot around a blocked edge: the first
    /// `hot_pair_fraction` of the world's SD pairs route around their
    /// blocked normal corridor with probability `detour_prob` for the
    /// whole trace.
    Hotspot {
        /// Fraction of SD pairs (by index) that are hot, `0.0..=1.0`.
        hot_pair_fraction: f64,
        /// Detour probability for sessions on a hot pair.
        detour_prob: f64,
    },
    /// Fleet-wide concept-drift switchpoint: sessions opened at or after
    /// `at_tick` sample routes — and are ground-truth-labelled — under
    /// regime 1 (the paper's §V-G role swap: the old detour becomes the
    /// popular route). Sessions opened earlier keep regime 0 for their
    /// whole life.
    DriftSwitch {
        /// Tick at which newly opened sessions switch to regime 1.
        at_tick: u32,
    },
    /// GPS dropout bursts: while `tick % period` falls in
    /// `[0, burst_len)`, each due point is *dropped* with probability
    /// `drop_prob` — the vehicle still moves (route position advances) but
    /// the engine never sees the point, and ground truth skips it too.
    /// With `drop_prob == 1.0` a short session can close having emitted
    /// nothing (a zero-length session).
    Dropout {
        /// Burst period in ticks.
        period: u32,
        /// Burst length in ticks (`<= period`).
        burst_len: u32,
        /// Per-point drop probability during a burst.
        drop_prob: f64,
    },
}

impl Serialize for Regime {
    fn serialize(&self) -> serde::Value {
        use serde::Value;
        let map = |tag: &str, fields: Vec<(&str, Value)>| {
            let mut m = vec![("type".to_string(), Value::Str(tag.to_string()))];
            m.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
            Value::Map(m)
        };
        match *self {
            Regime::ArrivalWave {
                period,
                offset,
                len,
                peak,
            } => map(
                "arrival_wave",
                vec![
                    ("period", period.serialize()),
                    ("offset", offset.serialize()),
                    ("len", len.serialize()),
                    ("peak", peak.serialize()),
                ],
            ),
            Regime::Incidents {
                mtth,
                duration,
                cooldown,
                detour_prob,
            } => map(
                "incidents",
                vec![
                    ("mtth", mtth.serialize()),
                    ("duration", duration.serialize()),
                    ("cooldown", cooldown.serialize()),
                    ("detour_prob", detour_prob.serialize()),
                ],
            ),
            Regime::Hotspot {
                hot_pair_fraction,
                detour_prob,
            } => map(
                "hotspot",
                vec![
                    ("hot_pair_fraction", hot_pair_fraction.serialize()),
                    ("detour_prob", detour_prob.serialize()),
                ],
            ),
            Regime::DriftSwitch { at_tick } => {
                map("drift_switch", vec![("at_tick", at_tick.serialize())])
            }
            Regime::Dropout {
                period,
                burst_len,
                drop_prob,
            } => map(
                "dropout",
                vec![
                    ("period", period.serialize()),
                    ("burst_len", burst_len.serialize()),
                    ("drop_prob", drop_prob.serialize()),
                ],
            ),
        }
    }
}

impl Deserialize for Regime {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        fn field<T: Deserialize>(v: &serde::Value, name: &str) -> Result<T, serde::Error> {
            T::deserialize(
                v.get(name)
                    .ok_or_else(|| serde::Error::missing_field("Regime", name))?,
            )
        }
        let tag = v
            .get("type")
            .and_then(|t| t.as_str())
            .ok_or_else(|| serde::Error::expected("tagged map", "Regime"))?;
        match tag {
            "arrival_wave" => Ok(Regime::ArrivalWave {
                period: field(v, "period")?,
                offset: field(v, "offset")?,
                len: field(v, "len")?,
                peak: field(v, "peak")?,
            }),
            "incidents" => Ok(Regime::Incidents {
                mtth: field(v, "mtth")?,
                duration: field(v, "duration")?,
                cooldown: field(v, "cooldown")?,
                detour_prob: field(v, "detour_prob")?,
            }),
            "hotspot" => Ok(Regime::Hotspot {
                hot_pair_fraction: field(v, "hot_pair_fraction")?,
                detour_prob: field(v, "detour_prob")?,
            }),
            "drift_switch" => Ok(Regime::DriftSwitch {
                at_tick: field(v, "at_tick")?,
            }),
            "dropout" => Ok(Regime::Dropout {
                period: field(v, "period")?,
                burst_len: field(v, "burst_len")?,
                drop_prob: field(v, "drop_prob")?,
            }),
            other => Err(serde::Error::msg(format!("unknown regime type `{other}`"))),
        }
    }
}

/// A complete scenario: network, duration, base arrival rate and the
/// regime stack. `(seed, spec)` fully determines the event trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name, used in reports (`BENCH_scenarios.json`).
    pub name: String,
    /// City the scenario runs on.
    pub network: NetworkKind,
    /// Trace length in ticks (sessions still open at the end are closed
    /// in one final drain tick).
    pub ticks: u32,
    /// Base session arrival rate, sessions per tick (may be fractional;
    /// arrivals accumulate deterministically).
    pub arrivals_per_tick: f64,
    /// Workload regimes layered onto the base arrival process.
    pub regimes: Vec<Regime>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_json_round_trip() {
        let spec = ScenarioSpec {
            name: "rush_hour".into(),
            network: NetworkKind::PortoRadial,
            ticks: 120,
            arrivals_per_tick: 0.8,
            regimes: vec![
                Regime::ArrivalWave {
                    period: 60,
                    offset: 10,
                    len: 15,
                    peak: 4.0,
                },
                Regime::Dropout {
                    period: 40,
                    burst_len: 8,
                    drop_prob: 0.5,
                },
            ],
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
