//! Deterministic fault injection: serializable fault plans replayed over
//! scenario traces.
//!
//! A [`FaultPlan`] is a list of [`Fault`]s pinned to trace ticks. Like a
//! workload spec, a plan is plain data — `(seed, spec, plan)` fully
//! determines *what* is injected and *when*, so a fault drill replays
//! exactly ([`FaultPlan::seeded`] derives a plan from a seed the same way
//! traces are derived from theirs). The runner half lives in
//! [`crate::ScenarioRunner::run_supervised`]: poison events ride the data
//! path as out-of-range segment ids, while worker panics and stalls ride
//! the control path as injected closures applied at flush boundaries.
//!
//! The injected panic message carries [`traj::FAULT_INJECTION_MARKER`] so
//! the default panic hook can be silenced for exactly these panics and no
//! others ([`traj::silence_injected_panic_output`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnet::SegmentId;
use serde::{Deserialize, Serialize};

/// The out-of-range segment id used as a poison event: no road network
/// has `u32::MAX` segments, so the engine's admission pre-screen
/// ([`traj::SessionEngine::admit`]) rejects it and the supervisor
/// quarantines the submitting session instead of panicking the shard.
pub const POISON_SEGMENT: SegmentId = SegmentId(u32::MAX);

/// One injected fault, pinned to the scenario tick clock.
///
/// Serialised as a tagged map (`{"type": "worker_panic", ...}`) — the
/// vendored serde derive only covers unit-variant enums, so the impls are
/// hand-written below, mirroring [`crate::Regime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Starting at `at_tick`, the next `victims` points (at most one per
    /// session) are replaced with [`POISON_SEGMENT`]. Each victim session
    /// is quarantined with [`traj::SessionFault::PoisonEvent`]; every
    /// other session must be unaffected.
    Poison {
        /// First tick at which points are poisoned.
        at_tick: u32,
        /// Number of distinct sessions to poison.
        victims: u32,
    },
    /// At `at_tick`, a control command that panics (with
    /// [`traj::FAULT_INJECTION_MARKER`]) is broadcast to every shard
    /// worker. Control commands apply at flush boundaries — the pending
    /// micro-batch lands first — so a supervised restart must salvage
    /// every session with byte-identical labels.
    WorkerPanic {
        /// Tick at which the panic command is injected.
        at_tick: u32,
    },
    /// At `at_tick`, every shard worker sleeps `millis` ms (one injected
    /// control command). The ingress queues back up behind the stall,
    /// exercising producer backoff and — if the stall outlasts the
    /// degraded-mode watermark — admission control.
    QueueStall {
        /// Tick at which the stall command is injected.
        at_tick: u32,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// From `from_tick` on, every `every` ticks each shard worker sleeps
    /// `micros` µs — a persistently slow shard rather than one long
    /// outage.
    SlowShard {
        /// First slowed tick.
        from_tick: u32,
        /// Injection period in ticks (`0` is treated as `1`).
        every: u32,
        /// Per-injection sleep in microseconds.
        micros: u64,
    },
}

impl Serialize for Fault {
    fn serialize(&self) -> serde::Value {
        use serde::Value;
        let map = |tag: &str, fields: Vec<(&str, Value)>| {
            let mut m = vec![("type".to_string(), Value::Str(tag.to_string()))];
            m.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
            Value::Map(m)
        };
        match *self {
            Fault::Poison { at_tick, victims } => map(
                "poison",
                vec![
                    ("at_tick", at_tick.serialize()),
                    ("victims", victims.serialize()),
                ],
            ),
            Fault::WorkerPanic { at_tick } => {
                map("worker_panic", vec![("at_tick", at_tick.serialize())])
            }
            Fault::QueueStall { at_tick, millis } => map(
                "queue_stall",
                vec![
                    ("at_tick", at_tick.serialize()),
                    ("millis", millis.serialize()),
                ],
            ),
            Fault::SlowShard {
                from_tick,
                every,
                micros,
            } => map(
                "slow_shard",
                vec![
                    ("from_tick", from_tick.serialize()),
                    ("every", every.serialize()),
                    ("micros", micros.serialize()),
                ],
            ),
        }
    }
}

impl Deserialize for Fault {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        fn field<T: Deserialize>(v: &serde::Value, name: &str) -> Result<T, serde::Error> {
            T::deserialize(
                v.get(name)
                    .ok_or_else(|| serde::Error::missing_field("Fault", name))?,
            )
        }
        let tag = v
            .get("type")
            .and_then(|t| t.as_str())
            .ok_or_else(|| serde::Error::expected("tagged map", "Fault"))?;
        match tag {
            "poison" => Ok(Fault::Poison {
                at_tick: field(v, "at_tick")?,
                victims: field(v, "victims")?,
            }),
            "worker_panic" => Ok(Fault::WorkerPanic {
                at_tick: field(v, "at_tick")?,
            }),
            "queue_stall" => Ok(Fault::QueueStall {
                at_tick: field(v, "at_tick")?,
                millis: field(v, "millis")?,
            }),
            "slow_shard" => Ok(Fault::SlowShard {
                from_tick: field(v, "from_tick")?,
                every: field(v, "every")?,
                micros: field(v, "micros")?,
            }),
            other => Err(serde::Error::msg(format!("unknown fault type `{other}`"))),
        }
    }
}

/// A composed fault drill: every fault fires on its own tick schedule
/// over one replay. An empty plan is a fault-free run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The injected faults, in declaration order (ties on the same tick
    /// fire in declaration order).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults (the baseline drill).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Derives a random-but-replayable plan from `seed` for a trace of
    /// `horizon` ticks: 1–3 faults of mixed classes with tick offsets,
    /// victim counts and stall lengths drawn from one seeded RNG. Equal
    /// arguments produce equal plans.
    pub fn seeded(seed: u64, horizon: u32) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon = horizon.max(4);
        let count = rng.gen_range(1..=3);
        let faults = (0..count)
            .map(|_| {
                let at_tick = rng.gen_range(1..horizon);
                match rng.gen_range(0..4u32) {
                    0 => Fault::Poison {
                        at_tick,
                        victims: rng.gen_range(1..=3),
                    },
                    1 => Fault::WorkerPanic { at_tick },
                    2 => Fault::QueueStall {
                        at_tick,
                        millis: rng.gen_range(1..=5),
                    },
                    _ => Fault::SlowShard {
                        from_tick: at_tick,
                        every: rng.gen_range(1..=8),
                        micros: rng.gen_range(50..=500),
                    },
                }
            })
            .collect();
        FaultPlan { faults }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Whether any fault in the plan is a [`Fault::WorkerPanic`].
    pub fn panics_workers(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::WorkerPanic { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_json_round_trip() {
        let plan = FaultPlan {
            faults: vec![
                Fault::Poison {
                    at_tick: 3,
                    victims: 2,
                },
                Fault::WorkerPanic { at_tick: 7 },
                Fault::QueueStall {
                    at_tick: 11,
                    millis: 4,
                },
                Fault::SlowShard {
                    from_tick: 2,
                    every: 5,
                    micros: 250,
                },
            ],
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn seeded_plans_replay() {
        let a = FaultPlan::seeded(0xDEAD, 64);
        let b = FaultPlan::seeded(0xDEAD, 64);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Different seeds eventually differ (spot check a few).
        assert!((0..16u64).any(|s| FaultPlan::seeded(s, 64) != a));
    }
}
