//! Drives one [`EventTrace`] through a serving engine and scores the
//! result.
//!
//! The same trace can be replayed through the synchronous sharded path
//! or the async ingest front door; because `SessionEngine` guarantees
//! interleaving never changes labels, both drivers (at any shard count
//! and flush policy) must emit byte-identical final labels — the
//! cross-driver half of the replay-determinism property in
//! `tests/scenarios.rs`.

use crate::faults::{Fault, FaultPlan, POISON_SEGMENT};
use crate::trace::EventTrace;
use eval::{evaluate, Confusion, DetectionMetrics};
use obs::{names, Obs, OpsEvent, Snapshot};
use rl4oasd::{IngestEngine, ShardedEngine, StreamEngine, TrainedModel};
use rnet::RoadNetwork;
use std::sync::Arc;
use std::time::{Duration, Instant};
use traj::{
    FlushPolicy, IngestConfig, IngestStats, LatencyHistogram, RetryPolicy, SessionEngine,
    SessionFault, SessionId, SubmitError, Subscription,
};

/// Jitter seed for the runner's producer-side backoff policy. Backoff
/// timing never reaches the engines, so labels are independent of it;
/// fixing the seed just makes replays' retry schedules reproducible too.
const BACKOFF_SEED: u64 = 0x0A5D_BAC0FF;

/// What to do when the ingest door reports [`SubmitError::QueueFull`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Spin (yielding) until the queue drains — no event is ever lost, so
    /// the outcome is comparable to the sync driver.
    Retry,
    /// Shed the event: count it as rejected and drop its ground-truth
    /// label too, so scoring stays aligned with what the engine saw.
    Shed,
}

/// Which serving path replays the trace.
#[derive(Debug, Clone)]
pub enum Driver {
    /// The synchronous [`ShardedEngine`]: one `observe_batch` per tick.
    /// Latency samples are per-tick batch walltimes.
    Sync {
        /// Shard count.
        shards: usize,
    },
    /// The async `IngestFrontDoor`: every point goes through `submit`,
    /// micro-batched under the flush policy. Latency samples are the
    /// door's own submit→label histogram.
    Ingest {
        /// Shard count.
        shards: usize,
        /// Micro-batching policy (the SLO under test).
        flush: FlushPolicy,
        /// Per-shard ingress queue capacity.
        queue_capacity: usize,
        /// Reaction to a full ingress queue.
        backpressure: Backpressure,
    },
    /// The full network path: an `oasd-serve` loopback server wrapping
    /// the same ingest front door, driven by one wire-protocol client
    /// connection. Lossless by construction (the server retries
    /// `QueueFull` under an unbounded policy), so the final labels must
    /// be byte-identical to both in-process drivers — invariant 16,
    /// property-tested in `tests/serve.rs`. Latency samples are the
    /// door's submit→label histogram (transport excluded; the wire
    /// round-trip is measured by the serve load generator instead).
    Net {
        /// Shard count behind the server.
        shards: usize,
        /// Micro-batching policy of the server's front door.
        flush: FlushPolicy,
        /// Per-shard ingress queue capacity.
        queue_capacity: usize,
    },
}

/// Labels, aligned ground truth and operational counters of one replay.
pub struct RunOutcome {
    /// Final labels per scenario session (empty for zero-length sessions).
    pub labels: Vec<Vec<u8>>,
    /// Ground truth aligned with `labels`; under [`Backpressure::Shed`]
    /// the labels of rejected events are removed here too.
    pub truth: Vec<Vec<u8>>,
    /// Sessions replayed.
    pub sessions: usize,
    /// Events delivered to the engine.
    pub events: u64,
    /// Events shed on `QueueFull` (always 0 for sync / retry runs).
    pub rejected: u64,
    /// Latency histogram (see [`Driver`] for what a sample means).
    pub latency: LatencyHistogram,
    /// Telemetry snapshot taken at the end of the replay. Empty unless
    /// the runner was built with [`ScenarioRunner::with_obs`].
    pub obs: Snapshot,
}

impl RunOutcome {
    /// Segment-level confusion over every (label, truth) pair.
    pub fn confusion(&self) -> Confusion {
        Confusion::of_corpus(&self.labels, &self.truth)
    }

    /// Span-level metrics (the paper's F1/TF1 protocol).
    pub fn span_metrics(&self) -> DetectionMetrics {
        evaluate(&self.labels, &self.truth)
    }
}

/// Outcome of a fault-injection replay ([`ScenarioRunner::run_supervised`]).
///
/// Sessions that terminated with an explicit [`SessionFault`] have empty
/// `labels`/`truth` rows and their fault recorded in `faults`; every
/// other row is scored exactly like a [`RunOutcome`].
pub struct FaultOutcome {
    /// Final labels per scenario session (empty for faulted sessions).
    pub labels: Vec<Vec<u8>>,
    /// Ground truth aligned with `labels` (cleared for faulted sessions).
    pub truth: Vec<Vec<u8>>,
    /// Terminal fault per session; `None` for sessions that closed clean.
    pub faults: Vec<Option<SessionFault>>,
    /// Sessions replayed.
    pub sessions: usize,
    /// Events accepted by `submit` (poison events included).
    pub delivered: u64,
    /// Poison events injected by the plan.
    pub poisons_injected: u64,
    /// Supervised worker restarts observed over the whole replay.
    pub worker_restarts: u64,
    /// Mean-time-to-recover proxy: the largest number of scenario ticks
    /// between injecting a [`Fault::WorkerPanic`] and observing every
    /// shard's restart counter tick over. `None` when the plan injected
    /// no panic (or the replay ended first — shutdown still drains).
    pub mttr_ticks: Option<u64>,
    /// Whether any shard entered degraded-mode admission control at any
    /// polled tick boundary.
    pub degraded_entered: bool,
    /// Final front-door counters (shed/quarantine accounting included).
    pub ingest: IngestStats,
    /// Telemetry snapshot taken after shutdown. Empty unless the runner
    /// was built with [`ScenarioRunner::with_obs`].
    pub obs: Snapshot,
}

impl FaultOutcome {
    /// Scenario session ids that terminated with a fault.
    pub fn faulted_sessions(&self) -> Vec<u32> {
        self.faults
            .iter()
            .enumerate()
            .filter_map(|(id, f)| f.map(|_| id as u32))
            .collect()
    }

    /// Sessions whose final labels were lost to a fault (the recovery
    /// metric: a clean drill loses only the sessions the plan poisoned).
    pub fn labels_lost(&self) -> u64 {
        self.faults.iter().filter(|f| f.is_some()).count() as u64
    }

    /// The exact-accounting invariant: every accepted event was either
    /// flushed into a shard engine, shed as a stray, or charged to a
    /// quarantined session — nothing vanished.
    pub fn accounting_exact(&self) -> bool {
        self.ingest.submitted
            == self.ingest.flushed_events + self.ingest.shed_events + self.ingest.quarantined_events
    }

    /// Segment-level confusion over the surviving sessions.
    pub fn confusion(&self) -> Confusion {
        Confusion::of_corpus(&self.labels, &self.truth)
    }
}

/// Replays event traces through serving engines built from one model.
pub struct ScenarioRunner {
    model: Arc<TrainedModel>,
    net: Arc<RoadNetwork>,
    obs: Obs,
}

impl ScenarioRunner {
    /// A runner serving `model` over `net` (the world's network).
    pub fn new(model: Arc<TrainedModel>, net: Arc<RoadNetwork>) -> Self {
        ScenarioRunner {
            model,
            net,
            obs: Obs::disabled(),
        }
    }

    /// Wires telemetry through every replay: the engines built by
    /// [`ScenarioRunner::run`] record under `obs`, replays count
    /// delivered/shed events (`oasd_scenario_*`, labelled
    /// `regime="sync"|"ingest"` by driver), and each [`RunOutcome`]
    /// carries a final [`Snapshot`]. Labels are unchanged either way
    /// (the replay-determinism property holds with telemetry on).
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = obs.clone();
        self
    }

    /// Replays `trace` through the chosen driver.
    pub fn run(&self, trace: &EventTrace, driver: &Driver) -> RunOutcome {
        match *driver {
            Driver::Sync { shards } => self.run_sync(trace, shards),
            Driver::Ingest {
                shards,
                flush,
                queue_capacity,
                backpressure,
            } => self.run_ingest(trace, shards, flush, queue_capacity, backpressure),
            Driver::Net {
                shards,
                flush,
                queue_capacity,
            } => self.run_net(trace, shards, flush, queue_capacity),
        }
    }

    fn run_sync(&self, trace: &EventTrace, shards: usize) -> RunOutcome {
        let mut engine = ShardedEngine::new(Arc::clone(&self.model), Arc::clone(&self.net), shards)
            .with_obs(&self.obs);
        let n = trace.sessions as usize;
        let mut handles: Vec<Option<SessionId>> = (0..n).map(|_| None).collect();
        let mut labels: Vec<Vec<u8>> = vec![Vec::new(); n];
        let mut latency = LatencyHistogram::new();
        let mut events: Vec<(SessionId, rnet::SegmentId)> = Vec::new();
        let mut out = Vec::new();
        for tick in &trace.ticks {
            for &(id, sd, t0) in &tick.opens {
                handles[id as usize] = Some(engine.open(sd, t0));
            }
            if !tick.points.is_empty() {
                events.clear();
                events.extend(tick.points.iter().map(|&(id, seg)| {
                    (
                        handles[id as usize].expect("point for unopened session"),
                        seg,
                    )
                }));
                let t = Instant::now();
                engine.observe_batch(&events, &mut out);
                latency.record(t.elapsed());
                debug_assert_eq!(out.len(), events.len());
            }
            for &id in &tick.closes {
                let h = handles[id as usize].take().expect("double close");
                labels[id as usize] = engine.close(h);
            }
        }
        self.obs
            .counter(names::SCENARIO_EVENTS, &[("regime", "sync")])
            .add(trace.events);
        if self.obs.enabled() {
            // stats() runs the full gauge mirror, so the snapshot shows
            // the end-of-replay fleet state, not the last flush's.
            let _ = engine.stats();
        }
        RunOutcome {
            labels,
            truth: trace.truth.clone(),
            sessions: n,
            events: trace.events,
            rejected: 0,
            latency,
            obs: self.obs.snapshot(),
        }
    }

    fn run_ingest(
        &self,
        trace: &EventTrace,
        shards: usize,
        flush: FlushPolicy,
        queue_capacity: usize,
        backpressure: Backpressure,
    ) -> RunOutcome {
        let engine = IngestEngine::new(
            Arc::clone(&self.model),
            Arc::clone(&self.net),
            shards,
            IngestConfig {
                flush,
                queue_capacity,
                obs: self.obs.clone(),
                ..Default::default()
            },
        );
        let handle = engine.handle();
        // Bounded exponential backoff with unlimited retries: no event is
        // ever lost under `Backpressure::Retry`, but a congested queue is
        // polled with doubling sleeps instead of a hot spin.
        let retry = RetryPolicy::unbounded(BACKOFF_SEED);
        let n = trace.sessions as usize;
        let mut open: Vec<Option<(SessionId, Subscription)>> = (0..n).map(|_| None).collect();
        let mut labels: Vec<Vec<u8>> = vec![Vec::new(); n];
        let mut truth: Vec<Vec<u8>> = vec![Vec::new(); n];
        let mut pos = vec![0usize; n];
        let mut delivered = 0u64;
        let mut rejected = 0u64;
        for tick in &trace.ticks {
            for &(id, sd, t0) in &tick.opens {
                // Opens and closes are control commands: they ride the same
                // bounded ingress queue as data points, but shedding one
                // would corrupt the session ledger — so both backpressure
                // modes retry them until the queue drains.
                let opened = retry
                    .run(u64::from(id), || handle.open(sd, t0))
                    .unwrap_or_else(|e| panic!("open rejected: {e:?}"));
                open[id as usize] = Some(opened);
            }
            for &(id, seg) in &tick.points {
                let k = id as usize;
                let session = open[k].as_ref().expect("point for unopened session").0;
                let t = trace.truth[k][pos[k]];
                pos[k] += 1;
                match backpressure {
                    Backpressure::Retry => {
                        retry
                            .run(u64::from(id), || handle.submit(session, seg))
                            .unwrap_or_else(|e| panic!("unexpected submit error: {e:?}"));
                        truth[k].push(t);
                        delivered += 1;
                    }
                    Backpressure::Shed => match handle.submit(session, seg) {
                        Ok(()) => {
                            truth[k].push(t);
                            delivered += 1;
                        }
                        Err(SubmitError::QueueFull) => rejected += 1,
                        Err(e) => panic!("unexpected submit error: {e:?}"),
                    },
                }
            }
            for &id in &tick.closes {
                let (session, sub) = open[id as usize].take().expect("double close");
                let ticket = retry
                    .run(u64::from(id), || handle.close(session))
                    .unwrap_or_else(|e| panic!("close rejected: {e:?}"));
                labels[id as usize] = ticket.wait().expect("unsupervised run never faults");
                drop(sub);
            }
        }
        self.obs
            .counter(names::SCENARIO_EVENTS, &[("regime", "ingest")])
            .add(delivered);
        self.obs
            .counter(names::SCENARIO_SHED, &[("regime", "ingest")])
            .add(rejected);
        if rejected > 0 {
            self.obs
                .event(OpsEvent::BackpressureShed { shed: rejected });
        }
        // Counters land before shutdown's final snapshot picks them up.
        let report = engine.shutdown();
        RunOutcome {
            labels,
            truth,
            sessions: n,
            events: delivered,
            rejected,
            latency: report.ingest.latency,
            obs: report.obs,
        }
    }

    fn run_net(
        &self,
        trace: &EventTrace,
        shards: usize,
        flush: FlushPolicy,
        queue_capacity: usize,
    ) -> RunOutcome {
        use serve::{Client, Frame, Server, ServerConfig};
        let server = Server::start(
            Arc::clone(&self.model),
            Arc::clone(&self.net),
            ServerConfig {
                shards,
                ingest: IngestConfig {
                    flush,
                    queue_capacity,
                    obs: self.obs.clone(),
                    ..Default::default()
                },
                // Open admission (tenant 0) + unbounded server-side
                // retry: the wire path sheds nothing, like
                // `Backpressure::Retry`.
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback serve listeners");
        let mut client = Client::connect(server.wire_addr()).expect("connect loopback server");
        let n = trace.sessions as usize;
        let mut labels: Vec<Vec<u8>> = vec![Vec::new(); n];
        let mut delivered = 0u64;
        // The wire session id IS the scenario session id, so `Closed`
        // frames route straight back to their rows.
        let absorb = |labels: &mut Vec<Vec<u8>>, frame: Frame| match frame {
            Frame::Opened { .. } | Frame::Label { .. } => {}
            Frame::Closed {
                session,
                labels: finals,
            } => {
                labels[session as usize] = finals;
            }
            Frame::Rejected { session, error } => {
                panic!("session {session} rejected over the wire: {error}")
            }
            Frame::Fault { session, fault } => {
                panic!("session {session} faulted over the wire (code {fault})")
            }
            other => panic!("unexpected frame from server: {other:?}"),
        };
        // FIFO per connection means opens/points/closes need no
        // acknowledgement round-trips — pipeline everything, draining
        // responses often enough that neither the per-session outboxes
        // nor the client-side socket buffer backs up.
        let mut since_drain = 0u32;
        for tick in &trace.ticks {
            for &(id, sd, t0) in &tick.opens {
                client
                    .send(&Frame::Open {
                        session: u64::from(id),
                        tenant: 0,
                        source: sd.source.0,
                        dest: sd.dest.0,
                        start_time: t0,
                        priority: 0,
                    })
                    .expect("send open");
            }
            for &(id, seg) in &tick.points {
                client
                    .send(&Frame::Submit {
                        session: u64::from(id),
                        segment: seg.0,
                    })
                    .expect("send submit");
                delivered += 1;
                since_drain += 1;
                if since_drain >= 64 {
                    since_drain = 0;
                    while let Some(frame) = client.try_recv().expect("drain during replay") {
                        absorb(&mut labels, frame);
                    }
                }
            }
            for &id in &tick.closes {
                client
                    .send(&Frame::Close {
                        session: u64::from(id),
                    })
                    .expect("send close");
            }
        }
        for frame in client.goodbye().expect("goodbye") {
            absorb(&mut labels, frame);
        }
        self.obs
            .counter(names::SCENARIO_EVENTS, &[("regime", "net")])
            .add(delivered);
        let report = server.shutdown();
        RunOutcome {
            labels,
            truth: trace.truth.clone(),
            sessions: n,
            events: delivered,
            rejected: 0,
            latency: report.ingest.latency,
            obs: report.obs,
        }
    }

    /// Replays `trace` through **supervised** ingest shards while
    /// injecting `plan`'s faults, and reports recovery metrics next to
    /// the usual labels.
    ///
    /// Poison faults ride the data path (an out-of-range segment id for
    /// the victim session); panics and stalls ride the control path as
    /// injected closures applied at flush boundaries. Every open, data
    /// point and close is delivered under an unbounded bounded-backoff
    /// retry, so the only sessions that lose labels are the ones the
    /// supervisor explicitly quarantined — the fault-isolation invariant
    /// checked in `tests/faults.rs`.
    pub fn run_supervised(
        &self,
        trace: &EventTrace,
        shards: usize,
        flush: FlushPolicy,
        queue_capacity: usize,
        plan: &FaultPlan,
    ) -> FaultOutcome {
        traj::silence_injected_panic_output();
        let engine = IngestEngine::supervised(
            Arc::clone(&self.model),
            Arc::clone(&self.net),
            shards,
            IngestConfig {
                flush,
                queue_capacity,
                obs: self.obs.clone(),
                ..Default::default()
            },
            None,
        );
        let handle = engine.handle();
        let retry = RetryPolicy::unbounded(BACKOFF_SEED);
        let n = trace.sessions as usize;
        let mut open: Vec<Option<(SessionId, Subscription)>> = (0..n).map(|_| None).collect();
        let mut labels: Vec<Vec<u8>> = vec![Vec::new(); n];
        let mut truth: Vec<Vec<u8>> = vec![Vec::new(); n];
        let mut faults: Vec<Option<SessionFault>> = vec![None; n];
        let mut poisoned = vec![false; n];
        let mut pos = vec![0usize; n];
        let mut delivered = 0u64;
        let mut poisons_injected = 0u64;
        let mut poison_budget = 0u32;
        let mut degraded_entered = false;
        // `(injection tick, restart-counter target)` of the most recent
        // panic injection still awaiting full recovery.
        let mut pending_recovery: Option<(u64, u64)> = None;
        let mut mttr_ticks: Option<u64> = None;
        for (t, tick) in trace.ticks.iter().enumerate() {
            let t = t as u32;
            for fault in &plan.faults {
                match *fault {
                    Fault::Poison { at_tick, victims } if at_tick == t => {
                        poison_budget += victims;
                    }
                    Fault::WorkerPanic { at_tick } if at_tick == t => {
                        let target = handle.worker_restarts() + shards as u64;
                        retry
                            .run(u64::from(t), || {
                                handle.control(|_: &mut StreamEngine| {
                                    panic!(
                                        "{}: injected worker panic",
                                        traj::FAULT_INJECTION_MARKER
                                    )
                                })
                            })
                            .expect("panic injection accepted");
                        // Overlapping panics extend the pending window to
                        // the new target but keep the first injection tick
                        // (MTTR measures the whole outage).
                        pending_recovery =
                            Some((pending_recovery.map_or(u64::from(t), |(t0, _)| t0), target));
                    }
                    Fault::QueueStall { at_tick, millis } if at_tick == t => {
                        retry
                            .run(u64::from(t), || {
                                handle.control(move |_: &mut StreamEngine| {
                                    std::thread::sleep(Duration::from_millis(millis));
                                })
                            })
                            .expect("stall injection accepted");
                    }
                    Fault::SlowShard {
                        from_tick,
                        every,
                        micros,
                    } if t >= from_tick && (t - from_tick).is_multiple_of(every.max(1)) => {
                        retry
                            .run(u64::from(t), || {
                                handle.control(move |_: &mut StreamEngine| {
                                    std::thread::sleep(Duration::from_micros(micros));
                                })
                            })
                            .expect("slowdown injection accepted");
                    }
                    _ => {}
                }
            }
            for &(id, sd, t0) in &tick.opens {
                let opened = retry
                    .run(u64::from(id), || handle.open(sd, t0))
                    .unwrap_or_else(|e| panic!("open rejected: {e:?}"));
                open[id as usize] = Some(opened);
            }
            for &(id, seg) in &tick.points {
                let k = id as usize;
                let session = open[k].as_ref().expect("point for unopened session").0;
                let truth_label = trace.truth[k][pos[k]];
                pos[k] += 1;
                let seg = if poison_budget > 0 && !poisoned[k] {
                    poison_budget -= 1;
                    poisons_injected += 1;
                    poisoned[k] = true;
                    POISON_SEGMENT
                } else {
                    seg
                };
                retry
                    .run(u64::from(id), || {
                        let r = handle.submit(session, seg);
                        // Sample degraded-mode entry while the rejection
                        // streak is hot — a per-tick probe would miss it
                        // once the backlog drains and the shard recovers.
                        if r.is_err() {
                            degraded_entered |= handle.any_degraded();
                        }
                        r
                    })
                    .unwrap_or_else(|e| panic!("unexpected submit error: {e:?}"));
                delivered += 1;
                if !poisoned[k] {
                    truth[k].push(truth_label);
                }
            }
            for &id in &tick.closes {
                let (session, sub) = open[id as usize].take().expect("double close");
                let ticket = retry
                    .run(u64::from(id), || handle.close(session))
                    .unwrap_or_else(|e| panic!("close rejected: {e:?}"));
                match ticket.wait() {
                    Ok(finals) => labels[id as usize] = finals,
                    Err(fault) => {
                        faults[id as usize] = Some(fault);
                        truth[id as usize].clear();
                    }
                }
                drop(sub);
            }
            degraded_entered |= handle.any_degraded();
            if let Some((t0, target)) = pending_recovery {
                if handle.worker_restarts() >= target {
                    let span = u64::from(t) - t0;
                    mttr_ticks = Some(mttr_ticks.map_or(span, |m| m.max(span)));
                    pending_recovery = None;
                }
            }
        }
        if let Some((t0, target)) = pending_recovery {
            // The panic command is already queued, so the restart is
            // guaranteed; wait it out and charge the remaining trace as
            // the outage so the drill always reports an MTTR.
            while handle.worker_restarts() < target {
                std::thread::yield_now();
            }
            let span = (trace.ticks.len() as u64).saturating_sub(t0);
            mttr_ticks = Some(mttr_ticks.map_or(span, |m| m.max(span)));
        }
        let report = engine.shutdown();
        FaultOutcome {
            labels,
            truth,
            faults,
            sessions: n,
            delivered,
            poisons_injected,
            worker_restarts: report.ingest.worker_restarts,
            mttr_ticks,
            degraded_entered,
            ingest: report.ingest,
            obs: report.obs,
        }
    }
}
