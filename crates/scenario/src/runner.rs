//! Drives one [`EventTrace`] through a serving engine and scores the
//! result.
//!
//! The same trace can be replayed through the synchronous sharded path
//! or the async ingest front door; because `SessionEngine` guarantees
//! interleaving never changes labels, both drivers (at any shard count
//! and flush policy) must emit byte-identical final labels — the
//! cross-driver half of the replay-determinism property in
//! `tests/scenarios.rs`.

use crate::trace::EventTrace;
use eval::{evaluate, Confusion, DetectionMetrics};
use obs::{names, Obs, OpsEvent, Snapshot};
use rl4oasd::{IngestEngine, ShardedEngine, TrainedModel};
use rnet::RoadNetwork;
use std::sync::Arc;
use std::time::Instant;
use traj::{
    FlushPolicy, IngestConfig, LatencyHistogram, SessionEngine, SessionId, SubmitError,
    Subscription,
};

/// What to do when the ingest door reports [`SubmitError::QueueFull`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Spin (yielding) until the queue drains — no event is ever lost, so
    /// the outcome is comparable to the sync driver.
    Retry,
    /// Shed the event: count it as rejected and drop its ground-truth
    /// label too, so scoring stays aligned with what the engine saw.
    Shed,
}

/// Which serving path replays the trace.
#[derive(Debug, Clone)]
pub enum Driver {
    /// The synchronous [`ShardedEngine`]: one `observe_batch` per tick.
    /// Latency samples are per-tick batch walltimes.
    Sync {
        /// Shard count.
        shards: usize,
    },
    /// The async `IngestFrontDoor`: every point goes through `submit`,
    /// micro-batched under the flush policy. Latency samples are the
    /// door's own submit→label histogram.
    Ingest {
        /// Shard count.
        shards: usize,
        /// Micro-batching policy (the SLO under test).
        flush: FlushPolicy,
        /// Per-shard ingress queue capacity.
        queue_capacity: usize,
        /// Reaction to a full ingress queue.
        backpressure: Backpressure,
    },
}

/// Labels, aligned ground truth and operational counters of one replay.
pub struct RunOutcome {
    /// Final labels per scenario session (empty for zero-length sessions).
    pub labels: Vec<Vec<u8>>,
    /// Ground truth aligned with `labels`; under [`Backpressure::Shed`]
    /// the labels of rejected events are removed here too.
    pub truth: Vec<Vec<u8>>,
    /// Sessions replayed.
    pub sessions: usize,
    /// Events delivered to the engine.
    pub events: u64,
    /// Events shed on `QueueFull` (always 0 for sync / retry runs).
    pub rejected: u64,
    /// Latency histogram (see [`Driver`] for what a sample means).
    pub latency: LatencyHistogram,
    /// Telemetry snapshot taken at the end of the replay. Empty unless
    /// the runner was built with [`ScenarioRunner::with_obs`].
    pub obs: Snapshot,
}

impl RunOutcome {
    /// Segment-level confusion over every (label, truth) pair.
    pub fn confusion(&self) -> Confusion {
        Confusion::of_corpus(&self.labels, &self.truth)
    }

    /// Span-level metrics (the paper's F1/TF1 protocol).
    pub fn span_metrics(&self) -> DetectionMetrics {
        evaluate(&self.labels, &self.truth)
    }
}

/// Replays event traces through serving engines built from one model.
pub struct ScenarioRunner {
    model: Arc<TrainedModel>,
    net: Arc<RoadNetwork>,
    obs: Obs,
}

impl ScenarioRunner {
    /// A runner serving `model` over `net` (the world's network).
    pub fn new(model: Arc<TrainedModel>, net: Arc<RoadNetwork>) -> Self {
        ScenarioRunner {
            model,
            net,
            obs: Obs::disabled(),
        }
    }

    /// Wires telemetry through every replay: the engines built by
    /// [`ScenarioRunner::run`] record under `obs`, replays count
    /// delivered/shed events (`oasd_scenario_*`, labelled
    /// `regime="sync"|"ingest"` by driver), and each [`RunOutcome`]
    /// carries a final [`Snapshot`]. Labels are unchanged either way
    /// (the replay-determinism property holds with telemetry on).
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = obs.clone();
        self
    }

    /// Replays `trace` through the chosen driver.
    pub fn run(&self, trace: &EventTrace, driver: &Driver) -> RunOutcome {
        match *driver {
            Driver::Sync { shards } => self.run_sync(trace, shards),
            Driver::Ingest {
                shards,
                flush,
                queue_capacity,
                backpressure,
            } => self.run_ingest(trace, shards, flush, queue_capacity, backpressure),
        }
    }

    fn run_sync(&self, trace: &EventTrace, shards: usize) -> RunOutcome {
        let mut engine = ShardedEngine::new(Arc::clone(&self.model), Arc::clone(&self.net), shards)
            .with_obs(&self.obs);
        let n = trace.sessions as usize;
        let mut handles: Vec<Option<SessionId>> = (0..n).map(|_| None).collect();
        let mut labels: Vec<Vec<u8>> = vec![Vec::new(); n];
        let mut latency = LatencyHistogram::new();
        let mut events: Vec<(SessionId, rnet::SegmentId)> = Vec::new();
        let mut out = Vec::new();
        for tick in &trace.ticks {
            for &(id, sd, t0) in &tick.opens {
                handles[id as usize] = Some(engine.open(sd, t0));
            }
            if !tick.points.is_empty() {
                events.clear();
                events.extend(tick.points.iter().map(|&(id, seg)| {
                    (
                        handles[id as usize].expect("point for unopened session"),
                        seg,
                    )
                }));
                let t = Instant::now();
                engine.observe_batch(&events, &mut out);
                latency.record(t.elapsed());
                debug_assert_eq!(out.len(), events.len());
            }
            for &id in &tick.closes {
                let h = handles[id as usize].take().expect("double close");
                labels[id as usize] = engine.close(h);
            }
        }
        self.obs
            .counter(names::SCENARIO_EVENTS, &[("regime", "sync")])
            .add(trace.events);
        if self.obs.enabled() {
            // stats() runs the full gauge mirror, so the snapshot shows
            // the end-of-replay fleet state, not the last flush's.
            let _ = engine.stats();
        }
        RunOutcome {
            labels,
            truth: trace.truth.clone(),
            sessions: n,
            events: trace.events,
            rejected: 0,
            latency,
            obs: self.obs.snapshot(),
        }
    }

    fn run_ingest(
        &self,
        trace: &EventTrace,
        shards: usize,
        flush: FlushPolicy,
        queue_capacity: usize,
        backpressure: Backpressure,
    ) -> RunOutcome {
        let engine = IngestEngine::new(
            Arc::clone(&self.model),
            Arc::clone(&self.net),
            shards,
            IngestConfig {
                flush,
                queue_capacity,
                obs: self.obs.clone(),
                ..Default::default()
            },
        );
        let handle = engine.handle();
        let n = trace.sessions as usize;
        let mut open: Vec<Option<(SessionId, Subscription)>> = (0..n).map(|_| None).collect();
        let mut labels: Vec<Vec<u8>> = vec![Vec::new(); n];
        let mut truth: Vec<Vec<u8>> = vec![Vec::new(); n];
        let mut pos = vec![0usize; n];
        let mut delivered = 0u64;
        let mut rejected = 0u64;
        for tick in &trace.ticks {
            for &(id, sd, t0) in &tick.opens {
                // Opens and closes are control commands: they ride the same
                // bounded ingress queue as data points, but shedding one
                // would corrupt the session ledger — so both backpressure
                // modes retry them until the queue drains.
                let opened = loop {
                    match handle.open(sd, t0) {
                        Ok(pair) => break pair,
                        Err(SubmitError::QueueFull) => std::thread::yield_now(),
                        Err(e) => panic!("open rejected: {e:?}"),
                    }
                };
                open[id as usize] = Some(opened);
            }
            for &(id, seg) in &tick.points {
                let k = id as usize;
                let session = open[k].as_ref().expect("point for unopened session").0;
                let t = trace.truth[k][pos[k]];
                pos[k] += 1;
                match backpressure {
                    Backpressure::Retry => {
                        while handle.submit(session, seg) == Err(SubmitError::QueueFull) {
                            std::thread::yield_now();
                        }
                        truth[k].push(t);
                        delivered += 1;
                    }
                    Backpressure::Shed => match handle.submit(session, seg) {
                        Ok(()) => {
                            truth[k].push(t);
                            delivered += 1;
                        }
                        Err(SubmitError::QueueFull) => rejected += 1,
                        Err(e) => panic!("unexpected submit error: {e:?}"),
                    },
                }
            }
            for &id in &tick.closes {
                let (session, sub) = open[id as usize].take().expect("double close");
                let ticket = loop {
                    match handle.close(session) {
                        Ok(ticket) => break ticket,
                        Err(SubmitError::QueueFull) => std::thread::yield_now(),
                        Err(e) => panic!("close rejected: {e:?}"),
                    }
                };
                labels[id as usize] = ticket.wait();
                drop(sub);
            }
        }
        self.obs
            .counter(names::SCENARIO_EVENTS, &[("regime", "ingest")])
            .add(delivered);
        self.obs
            .counter(names::SCENARIO_SHED, &[("regime", "ingest")])
            .add(rejected);
        if rejected > 0 {
            self.obs
                .event(OpsEvent::BackpressureShed { shed: rejected });
        }
        // Counters land before shutdown's final snapshot picks them up.
        let report = engine.shutdown();
        RunOutcome {
            labels,
            truth,
            sessions: n,
            events: delivered,
            rejected,
            latency: report.ingest.latency,
            obs: report.obs,
        }
    }
}
