//! City-scale scenario engine with deterministic replay.
//!
//! The correctness spine of this reproduction (byte-identity across
//! shards, ingest, hibernation, hot-swap) proves that every serving path
//! agrees — it says nothing about whether detection *quality* survives
//! realistic workloads. This crate turns quality-under-load into a
//! regression suite:
//!
//! * a [`ScenarioSpec`] composes **workload regimes** — rush-hour arrival
//!   waves, incident injection with MTTH-style recurrence, detour hotspots
//!   around a blocked edge, fleet-wide drift switchpoints, GPS dropout
//!   bursts — over a pluggable road network ([`NetworkKind`]: the
//!   Chengdu-like grid or the Porto-like radial city);
//! * every scenario is a **`(seed, spec)` pair**: [`EventTrace::generate`]
//!   is a pure function of the world, the spec and the seed, so any run
//!   replays byte-identically (same event stream, same ground truth) —
//!   property-tested in `tests/scenarios.rs`;
//! * a [`ScenarioRunner`] drives the **same trace** through any serving
//!   path — the synchronous `ShardedEngine`, the async
//!   `IngestFrontDoor`, or a loopback `oasd-serve` network server
//!   ([`Driver::Net`]) — and scores the emitted labels against the trace's
//!   ground truth (segment-level precision/recall/F1 and the paper's
//!   span-level metrics), plus latency percentiles;
//! * [`standard_suite`] is the fixed scenario battery the soak bin
//!   (`crates/bench/src/bin/scenarios.rs`) records to
//!   `BENCH_scenarios.json`;
//! * a [`FaultPlan`] layers **deterministic fault injection** (poison
//!   events, worker panics, queue stalls, slow shards) over any trace:
//!   [`ScenarioRunner::run_supervised`] replays it through supervised
//!   ingest shards and reports recovery metrics (labels lost, restarts,
//!   MTTR in ticks) next to the usual scores — the drill the chaos bin
//!   (`crates/bench/src/bin/faults.rs`) records to `BENCH_faults.json`.
//!
//! Every future detector (ensemble, CroTad-style contrastive, graph
//! enhanced) is benchmarked on this harness.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod faults;
pub mod runner;
pub mod spec;
pub mod suite;
pub mod trace;
pub mod world;

pub use faults::{Fault, FaultPlan, POISON_SEGMENT};
pub use runner::{Backpressure, Driver, FaultOutcome, RunOutcome, ScenarioRunner};
pub use spec::{NetworkKind, Regime, ScenarioSpec};
pub use suite::standard_suite;
pub use trace::{EventTrace, TickEvents};
pub use world::World;
