//! The standard scenario battery: six named regimes, instantiable on
//! either city. The soak bin runs `standard_suite` on both networks and
//! records the outcome to `BENCH_scenarios.json`; CI smoke-runs one
//! scenario from it.

use crate::spec::{NetworkKind, Regime, ScenarioSpec};

/// The six standard scenarios on `network`, each `ticks` long with a base
/// arrival rate of `arrivals_per_tick` sessions/tick.
///
/// 1. `steady_flow` — the base arrival process alone (quality baseline);
/// 2. `rush_hour_waves` — periodic arrival bursts at 4× the base rate;
/// 3. `incident_recurrence` — MTTH-recurrent incidents, each blocking one
///    SD pair's corridor and forcing detours while active;
/// 4. `blocked_edge_hotspot` — a standing detour hotspot around a blocked
///    edge on half the SD pairs;
/// 5. `fleet_drift` — a fleet-wide role-swap switchpoint at mid-trace
///    (the paper's §V-G drift, served by a model trained pre-drift);
/// 6. `gps_dropout_bursts` — periodic bursts dropping half the points,
///    producing gappy (sometimes zero-length) sessions.
pub fn standard_suite(
    network: NetworkKind,
    ticks: u32,
    arrivals_per_tick: f64,
) -> Vec<ScenarioSpec> {
    let spec = |name: &str, regimes: Vec<Regime>| ScenarioSpec {
        name: name.to_string(),
        network,
        ticks,
        arrivals_per_tick,
        regimes,
    };
    vec![
        spec("steady_flow", vec![]),
        spec(
            "rush_hour_waves",
            vec![Regime::ArrivalWave {
                period: 60,
                offset: 10,
                len: 15,
                peak: arrivals_per_tick * 4.0,
            }],
        ),
        spec(
            "incident_recurrence",
            vec![Regime::Incidents {
                mtth: 12.0,
                duration: 20,
                cooldown: 10,
                detour_prob: 0.85,
            }],
        ),
        spec(
            "blocked_edge_hotspot",
            vec![Regime::Hotspot {
                hot_pair_fraction: 0.5,
                detour_prob: 0.6,
            }],
        ),
        spec(
            "fleet_drift",
            vec![Regime::DriftSwitch { at_tick: ticks / 2 }],
        ),
        spec(
            "gps_dropout_bursts",
            vec![Regime::Dropout {
                period: 40,
                burst_len: 8,
                drop_prob: 0.5,
            }],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_six_distinct_scenarios() {
        let suite = standard_suite(NetworkKind::ChengduGrid, 120, 1.0);
        assert_eq!(suite.len(), 6);
        let mut names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "scenario names must be unique");
        // Five of the six carry a non-empty regime stack, all distinct.
        let regimes: Vec<_> = suite.iter().filter(|s| !s.regimes.is_empty()).collect();
        assert_eq!(regimes.len(), 5);
    }
}
