//! A *world* is the static substrate scenarios run on: one road network
//! plus its SD-pair route families, built deterministically from a
//! [`NetworkKind`] and a seed.

use crate::spec::NetworkKind;
use rl4oasd::{Rl4oasdConfig, TrainedModel};
use rnet::{CityBuilder, CityConfig, RadialCityBuilder, RadialCityConfig, RoadNetwork};
use std::sync::Arc;
use traj::{Dataset, SdPairData, TrafficConfig, TrafficSimulator};

/// Road network + route families + the traffic config that produced them.
///
/// Worlds are pure functions of `(kind, scale, seed)`: the network build,
/// the route-family construction and the training corpus all derive from
/// seeded RNGs, so two processes that build the same world agree on every
/// segment id and every route — the precondition for byte-identical
/// scenario replay.
pub struct World {
    /// Which city generator built the network.
    pub kind: NetworkKind,
    /// The road network (shared with engines).
    pub net: Arc<RoadNetwork>,
    /// Per-SD-pair route families (normal routes + disjoint detours), as
    /// built by `traj::TrafficSimulator::build_route_families`.
    pub pairs: Vec<SdPairData>,
    /// The traffic config the families were built with; also used to
    /// generate the training corpus in [`World::train`].
    pub traffic: TrafficConfig,
}

impl World {
    /// Small world for unit/property tests: tiny city, 4 SD pairs.
    pub fn tiny(kind: NetworkKind, seed: u64) -> World {
        let net = match kind {
            NetworkKind::ChengduGrid => CityBuilder::new(CityConfig::tiny(seed)).build(),
            NetworkKind::PortoRadial => {
                RadialCityBuilder::new(RadialCityConfig::tiny(seed)).build()
            }
        };
        let traffic = TrafficConfig {
            num_sd_pairs: 4,
            trajs_per_pair: (50, 70),
            anomaly_ratio: 0.15,
            ..TrafficConfig::tiny(seed)
        };
        World::build(kind, net, traffic)
    }

    /// Full-size world for soak runs: the city preset at paper scale,
    /// more SD pairs, longer routes.
    pub fn city(kind: NetworkKind, seed: u64) -> World {
        let net = match kind {
            NetworkKind::ChengduGrid => CityBuilder::new(CityConfig::chengdu_like()).build(),
            NetworkKind::PortoRadial => {
                RadialCityBuilder::new(RadialCityConfig::porto_like()).build()
            }
        };
        let traffic = TrafficConfig {
            num_sd_pairs: 8,
            trajs_per_pair: (50, 80),
            anomaly_ratio: 0.12,
            min_route_len: 8,
            max_route_len: 40,
            seed,
            ..TrafficConfig::default()
        };
        World::build(kind, net, traffic)
    }

    fn build(kind: NetworkKind, net: RoadNetwork, traffic: TrafficConfig) -> World {
        let sim = TrafficSimulator::new(&net, traffic.clone());
        let pairs = sim.build_route_families();
        World {
            kind,
            net: Arc::new(net),
            pairs,
            traffic,
        }
    }

    /// Trains an RL4OASD model on this world's traffic. The training
    /// corpus is `TrafficSimulator::generate()` with the world's own
    /// config, whose route families are exactly [`World::pairs`] (same
    /// seed, same draws) — so the model learns the same normal routes the
    /// scenario traces are labelled against.
    pub fn train(&self, cfg: &Rl4oasdConfig) -> TrainedModel {
        let sim = TrafficSimulator::new(&self.net, self.traffic.clone());
        let ds = Dataset::from_generated(&sim.generate());
        rl4oasd::train(&self.net, &ds, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worlds_are_deterministic() {
        let a = World::tiny(NetworkKind::PortoRadial, 7);
        let b = World::tiny(NetworkKind::PortoRadial, 7);
        assert_eq!(a.net.num_segments(), b.net.num_segments());
        assert_eq!(a.pairs.len(), b.pairs.len());
        for (pa, pb) in a.pairs.iter().zip(&b.pairs) {
            assert_eq!(pa.pair, pb.pair);
            for (ra, rb) in pa.routes.iter().zip(&pb.routes) {
                assert_eq!(ra.segments, rb.segments);
            }
        }
    }

    #[test]
    fn kinds_build_different_networks() {
        let grid = World::tiny(NetworkKind::ChengduGrid, 7);
        let radial = World::tiny(NetworkKind::PortoRadial, 7);
        assert_ne!(grid.net.num_nodes(), radial.net.num_nodes());
    }
}
