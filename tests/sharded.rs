//! Shard-invariance harness for the multi-core serving path: a
//! `ShardedEngine` (or a sharded baseline) must produce **byte-identical**
//! labels and anomaly decisions to a single `StreamEngine` (or unsharded
//! mux) on the same workload, for every shard count — sharding is a pure
//! throughput transformation, never a behavioural one. The property tests
//! drive random session interleavings through shard counts 1, 2 and 8;
//! the stats tests pin the aggregation contract (engine totals = sum of
//! per-shard values = single-engine totals for workload-invariant fields).
//!
//! These tests also exercise the scoped-thread tick drive (threads default
//! to one per shard), so thread-safety regressions in the sharded path
//! fail here — in CI via the release test job — not just under manual
//! stress runs.

use proptest::prelude::*;
use rl4oasd::ShardedEngine;
use rl4oasd_repro::prelude::*;
use std::sync::{Arc, OnceLock};

mod common;
use common::{interleaved, trained_fixture, CityKind, EngineFixture};

/// One shared trained fixture for every test in this file (training is the
/// expensive part; the properties only exercise serving).
fn fixture() -> &'static EngineFixture {
    static FIXTURE: OnceLock<EngineFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| trained_fixture(CityKind::ChengduGrid, 0x5AAD))
}

/// The shard counts every invariance property sweeps (1 = the degenerate
/// sharded engine, 2 = minimal parallelism, 8 = more shards than the
/// bench sweep's largest tier).
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// RL4OASD: for random session interleavings, the `ShardedEngine` at
    /// shard counts 1, 2 and 8 produces byte-identical labels to a single
    /// `StreamEngine` on the same schedule.
    #[test]
    fn sharded_engine_is_shard_invariant(seed in 0u64..10_000, n in 2usize..20) {
        let fx = fixture();
        let trajs: Vec<&MappedTrajectory> = fx.trajs.iter().take(n).collect();
        let mut single = StreamEngine::new(Arc::clone(&fx.model), Arc::clone(&fx.net));
        let expected = interleaved(&mut single, &trajs, seed);
        for shards in SHARD_COUNTS {
            let mut engine =
                ShardedEngine::new(Arc::clone(&fx.model), Arc::clone(&fx.net), shards);
            let got = interleaved(&mut engine, &trajs, seed);
            prop_assert!(got == expected, "shards = {} diverged", shards);
            prop_assert_eq!(engine.active_sessions(), 0);
            // Decisions, not just labels: RNEL/policy splits are identical.
            prop_assert_eq!(engine.decision_counts(), single.decision_counts());
        }
    }

    /// Every sharded baseline: byte-identical labels to its unsharded mux
    /// across shard counts, for random interleavings.
    #[test]
    fn sharded_baselines_are_shard_invariant(seed in 0u64..10_000, n in 2usize..14) {
        let fx = fixture();
        let trajs: Vec<&MappedTrajectory> = fx.trajs.iter().take(n).collect();
        let weights = [1.0, 0.5, 0.25, 0.5, 1.0, 0.75];

        let mut expected = Vec::new();
        for (b, reference) in [
            Box::new(baselines::iboat_engine(Arc::clone(&fx.stats), 0.05, 0.5))
                as Box<dyn SessionEngine>,
            Box::new(baselines::dbtod_engine(&fx.net, Arc::clone(&fx.stats), weights, 2.0)),
            Box::new(baselines::ctss_engine(&fx.net, Arc::clone(&fx.stats), 150.0)),
        ]
        .into_iter()
        .enumerate()
        {
            let mut reference = reference;
            expected.push((b, interleaved(&mut *reference, &trajs, seed)));
        }

        for shards in SHARD_COUNTS {
            let engines: [Box<dyn SessionEngine>; 3] = [
                Box::new(baselines::sharded_iboat_engine(
                    Arc::clone(&fx.stats), 0.05, 0.5, shards,
                )),
                Box::new(baselines::sharded_dbtod_engine(
                    &fx.net, Arc::clone(&fx.stats), weights, 2.0, shards,
                )),
                Box::new(baselines::sharded_ctss_engine(
                    &fx.net, Arc::clone(&fx.stats), 150.0, shards,
                )),
            ];
            for (mut engine, (b, want)) in engines.into_iter().zip(&expected) {
                let got = interleaved(&mut *engine, &trajs, seed);
                prop_assert!(
                    &got == want,
                    "baseline #{} with {} shards diverged", b, shards
                );
            }
        }
    }
}

/// Aggregated `stats()` / `decision_counts()` are exactly the sums of the
/// per-shard values, and the workload-invariant fields match a single
/// `StreamEngine` run on the same workload. (The batched/scalar event
/// split legitimately differs — shards see smaller tick slices — but the
/// total event count is conserved.)
#[test]
fn aggregated_stats_equal_per_shard_sums_and_single_engine() {
    let fx = fixture();
    let trajs: Vec<&MappedTrajectory> = fx.trajs.iter().take(30).collect();

    let mut single = StreamEngine::new(Arc::clone(&fx.model), Arc::clone(&fx.net));
    let expected = interleaved(&mut single, &trajs, 42);
    let mut engine = ShardedEngine::new(Arc::clone(&fx.model), Arc::clone(&fx.net), 4);
    let got = interleaved(&mut engine, &trajs, 42);
    assert_eq!(got, expected);

    // Aggregates are the exact field-wise sums of the per-shard stats.
    let agg = engine.stats();
    let per_shard = engine.shard_stats();
    assert_eq!(per_shard.len(), 4);
    let summed: EngineStats = per_shard.iter().copied().sum();
    assert_eq!(agg, summed);
    assert_eq!(
        agg.observe_events,
        per_shard.iter().map(|s| s.observe_events).sum::<u64>()
    );
    let (rnel, policy) = engine.decision_counts();
    let shard_counts = engine.shard_decision_counts();
    assert_eq!(rnel, shard_counts.iter().map(|c| c.0).sum::<usize>());
    assert_eq!(policy, shard_counts.iter().map(|c| c.1).sum::<usize>());

    // Workload-invariant fields match the single-engine run.
    let one = single.stats();
    assert_eq!(agg.sessions_opened, one.sessions_opened);
    assert_eq!(agg.sessions_closed, one.sessions_closed);
    assert_eq!(agg.observe_events, one.observe_events);
    assert_eq!(
        agg.batched_events + agg.scalar_events,
        one.batched_events + one.scalar_events,
        "events lost or double-counted across shards"
    );
    assert_eq!(engine.decision_counts(), single.decision_counts());
}

/// The worker-thread cap is a pure scheduling knob: the same workload
/// through 1-thread and N-thread drives of the same shard count yields
/// identical labels and stats.
#[test]
fn thread_count_never_changes_results() {
    let fx = fixture();
    let trajs: Vec<&MappedTrajectory> = fx.trajs.iter().take(24).collect();

    let mut serial =
        ShardedEngine::new(Arc::clone(&fx.model), Arc::clone(&fx.net), 8).with_threads(1);
    assert_eq!(serial.threads(), 1);
    let expected = interleaved(&mut serial, &trajs, 7);

    let mut parallel = ShardedEngine::new(Arc::clone(&fx.model), Arc::clone(&fx.net), 8);
    assert_eq!(parallel.threads(), 8);
    let got = interleaved(&mut parallel, &trajs, 7);

    assert_eq!(got, expected);
    assert_eq!(parallel.stats(), serial.stats());
    assert_eq!(parallel.decision_counts(), serial.decision_counts());
    assert_eq!(parallel.shard_stats(), serial.shard_stats());
}

/// Fleet-scale smoke of the sharded path: 2,000 concurrent sessions over 8
/// shards, tick-synchronous, byte-identical to the single engine.
#[test]
fn sharded_engine_sustains_fleet_scale() {
    let fx = fixture();
    let sessions: Vec<&MappedTrajectory> = fx
        .trajs
        .iter()
        .cycle()
        .take(2_000.max(fx.trajs.len()))
        .collect();

    let mut single = StreamEngine::new(Arc::clone(&fx.model), Arc::clone(&fx.net));
    let mut engine = ShardedEngine::new(Arc::clone(&fx.model), Arc::clone(&fx.net), 8);
    let hs: Vec<_> = sessions
        .iter()
        .map(|t| single.open(t.sd_pair().unwrap(), t.start_time))
        .collect();
    let hp: Vec<_> = sessions
        .iter()
        .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
        .collect();
    assert!(engine.active_sessions() >= 1_000);

    let max_len = sessions.iter().map(|t| t.len()).max().unwrap();
    let (mut ev_s, mut ev_p) = (Vec::new(), Vec::new());
    let (mut out_s, mut out_p) = (Vec::new(), Vec::new());
    for tick in 0..max_len {
        ev_s.clear();
        ev_p.clear();
        for (k, t) in sessions.iter().enumerate() {
            if tick < t.len() {
                ev_s.push((hs[k], t.segments[tick]));
                ev_p.push((hp[k], t.segments[tick]));
            }
        }
        single.observe_batch(&ev_s, &mut out_s);
        engine.observe_batch(&ev_p, &mut out_p);
        assert_eq!(out_p, out_s, "tick {tick} labels diverged");
    }
    for (hs, hp) in hs.iter().zip(&hp) {
        assert_eq!(engine.close(*hp), single.close(*hs));
    }
    assert_eq!(engine.active_sessions(), 0);
    assert!(engine.stats().observe_events >= 10_000);
    assert_eq!(engine.decision_counts(), single.decision_counts());
}
