//! Wire-protocol codec properties for the `oasd-serve` front door.
//!
//! The contract under test (half of ARCHITECTURE.md invariant 16): the
//! frame codec in `serve::proto` round-trips every frame the protocol
//! can express, reassembles identically under any byte-boundary
//! fragmentation of the stream, and turns every malformed input —
//! truncated frames, oversized or zero length prefixes, unknown opcodes,
//! out-of-range field codes, trailing bytes, overlong varints — into a
//! typed [`FrameError`], never a panic. Once a stream errors, the error
//! is sticky: framing is unrecoverable, so the reader refuses to resync
//! on garbage.

use proptest::prelude::*;
use rl4oasd_repro::serve::proto::{
    decode_frame, fault_from_code, frame_bytes, Frame, FrameError, FrameReader, WireError,
    MAX_FRAME,
};

/// Deterministically maps sampled scalars onto one frame of each kind —
/// the strategy surface for every property below.
fn build_frame(kind: u8, session: u64, x: u32, y: u32, t: f64, labels: Vec<u8>) -> Frame {
    match kind % 10 {
        0 => Frame::Open {
            session,
            tenant: x,
            source: y,
            dest: x ^ y,
            start_time: t,
            priority: (x & 1) as u8,
        },
        1 => Frame::Submit {
            session,
            segment: x,
        },
        2 => Frame::Close { session },
        3 => Frame::Goodbye,
        4 => Frame::Opened {
            session,
            epoch_seq: x,
        },
        5 => Frame::Label {
            session,
            label: (y % 2) as u8,
        },
        6 => Frame::Closed { session, labels },
        7 => Frame::Rejected {
            session,
            error: WireError::from_code((x % 9 + 1) as u8).expect("codes 1..=9 are assigned"),
        },
        8 => Frame::Fault {
            session,
            fault: (x % 4 + 1) as u8,
        },
        _ => Frame::Bye,
    }
}

fn prefix_len(bytes: &[u8]) -> usize {
    u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Every frame type round-trips: encode → strip prefix → decode is
    /// the identity, and the length prefix matches the payload exactly.
    #[test]
    fn frame_roundtrip(
        (kind, session) in (0u8..10, 0u64..u64::MAX),
        (x, y) in (0u32..u32::MAX, 0u32..u32::MAX),
        t in -1.0e12f64..1.0e12,
        raw_labels in collection::vec(0u16..256, 0..64),
    ) {
        let labels: Vec<u8> = raw_labels.into_iter().map(|v| v as u8).collect();
        let frame = build_frame(kind, session, x, y, t, labels);
        let bytes = frame_bytes(&frame);
        prop_assert_eq!(prefix_len(&bytes), bytes.len() - 4);
        let back = decode_frame(&bytes[4..]).expect("own encoding decodes");
        prop_assert_eq!(back, frame);
    }

    /// Any byte-boundary fragmentation of a valid multi-frame stream
    /// reassembles to the identical frame sequence — TCP segmentation
    /// can never change what the peer decodes.
    #[test]
    fn fragmentation_invariance(
        kinds in collection::vec(0u8..10, 1..12),
        (x, y) in (0u32..u32::MAX, 0u32..u32::MAX),
        chunk_sizes in collection::vec(1usize..9, 1..24),
    ) {
        let frames: Vec<Frame> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| build_frame(k, i as u64, x ^ i as u32, y, 0.25 * i as f64, vec![1, 0, 1]))
            .collect();
        let stream: Vec<u8> = frames.iter().flat_map(frame_bytes).collect();

        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        let mut pos = 0;
        let mut chunk = 0;
        while pos < stream.len() {
            let take = chunk_sizes[chunk % chunk_sizes.len()].min(stream.len() - pos);
            chunk += 1;
            reader.push(&stream[pos..pos + take]);
            pos += take;
            while let Some(frame) = reader.next().expect("valid stream never errors") {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(reader.pending(), 0);
    }

    /// Arbitrary garbage never panics the reader: every outcome is a
    /// clean frame, "need more bytes", or a typed error.
    #[test]
    fn garbage_never_panics(
        raw_garbage in collection::vec(0u16..256, 0..200),
        chunk_sizes in collection::vec(1usize..17, 1..8),
    ) {
        let garbage: Vec<u8> = raw_garbage.into_iter().map(|v| v as u8).collect();
        let mut reader = FrameReader::new();
        let mut pos = 0;
        let mut chunk = 0;
        let mut dead = false;
        while pos < garbage.len() {
            let take = chunk_sizes[chunk % chunk_sizes.len()].min(garbage.len() - pos);
            chunk += 1;
            reader.push(&garbage[pos..pos + take]);
            pos += take;
            loop {
                match reader.next() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(first) => {
                        // Sticky: the same typed error forever after.
                        prop_assert_eq!(reader.next().unwrap_err(), first);
                        dead = true;
                        break;
                    }
                }
            }
            if dead {
                break;
            }
        }
    }
}

/// A truncated frame is "need more bytes" at every split point, and the
/// full frame still decodes once the tail arrives — for every frame kind.
#[test]
fn truncation_is_incomplete_not_error() {
    for kind in 0u8..10 {
        let frame = build_frame(kind, 42, 7, 3, 1.5, vec![0, 1, 1, 0]);
        let bytes = frame_bytes(&frame);
        for split in 0..bytes.len() {
            let mut reader = FrameReader::new();
            reader.push(&bytes[..split]);
            assert_eq!(
                reader
                    .next()
                    .expect("prefix of a valid frame is not an error"),
                None,
                "kind {kind} split {split}"
            );
            reader.push(&bytes[split..]);
            assert_eq!(reader.next().unwrap(), Some(frame.clone()));
            assert_eq!(reader.next().unwrap(), None);
        }
    }
}

#[test]
fn oversized_length_prefix_is_typed_and_sticky() {
    let mut reader = FrameReader::new();
    let huge = (MAX_FRAME as u32) + 1;
    reader.push(&huge.to_le_bytes());
    assert_eq!(reader.next(), Err(FrameError::Oversized(huge)));
    // Sticky even if valid bytes arrive afterwards — framing is lost.
    reader.push(&frame_bytes(&Frame::Bye));
    assert_eq!(reader.next(), Err(FrameError::Oversized(huge)));
}

#[test]
fn zero_length_prefix_is_rejected() {
    let mut reader = FrameReader::new();
    reader.push(&0u32.to_le_bytes());
    assert_eq!(reader.next(), Err(FrameError::Oversized(0)));
}

#[test]
fn unknown_opcode_is_typed() {
    let mut reader = FrameReader::new();
    reader.push(&1u32.to_le_bytes());
    reader.push(&[0x7F]);
    assert_eq!(reader.next(), Err(FrameError::UnknownOpcode(0x7F)));
}

#[test]
fn trailing_bytes_are_rejected() {
    // A valid Close frame with one extra payload byte (prefix widened to
    // match): the decoder must consume payloads exactly.
    let mut bytes = frame_bytes(&Frame::Close { session: 9 });
    bytes.push(0xAB);
    let n = prefix_len(&bytes) as u32 + 1;
    bytes[..4].copy_from_slice(&n.to_le_bytes());
    let mut reader = FrameReader::new();
    reader.push(&bytes);
    assert_eq!(reader.next(), Err(FrameError::TrailingBytes));
}

#[test]
fn out_of_range_field_codes_are_rejected() {
    // Rejected-frame error code 0 is unassigned.
    let mut bytes = frame_bytes(&Frame::Rejected {
        session: 1,
        error: WireError::QueueFull,
    });
    *bytes.last_mut().unwrap() = 0;
    assert_eq!(decode_frame(&bytes[4..]), Err(FrameError::BadField));

    // Open priority 2 is outside {0 = high, 1 = low}.
    let mut bytes = frame_bytes(&Frame::Open {
        session: 1,
        tenant: 0,
        source: 5,
        dest: 6,
        start_time: 0.0,
        priority: 1,
    });
    *bytes.last_mut().unwrap() = 2;
    assert_eq!(decode_frame(&bytes[4..]), Err(FrameError::BadField));

    // Fault code 5 is unassigned.
    let mut bytes = frame_bytes(&Frame::Fault {
        session: 1,
        fault: 1,
    });
    *bytes.last_mut().unwrap() = 5;
    assert_eq!(decode_frame(&bytes[4..]), Err(FrameError::BadField));
}

#[test]
fn overlong_varint_is_typed() {
    // Reuse a real opcode byte, then 11 continuation bytes — more than
    // any u64 varint can span.
    let close = frame_bytes(&Frame::Close { session: 1 });
    let opcode = close[4];
    let mut payload = vec![opcode];
    payload.extend_from_slice(&[0xFF; 11]);
    let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
    bytes.extend_from_slice(&payload);
    let mut reader = FrameReader::new();
    reader.push(&bytes);
    assert_eq!(reader.next(), Err(FrameError::VarintOverflow));
}

#[test]
fn error_and_fault_codes_roundtrip() {
    for code in 1u8..=9 {
        let e = WireError::from_code(code).expect("codes 1..=9 assigned");
        assert_eq!(e.code(), code);
    }
    assert_eq!(WireError::from_code(0), None);
    assert_eq!(WireError::from_code(10), None);
    for code in 1u8..=4 {
        let fault = fault_from_code(code).expect("codes 1..=4 assigned");
        assert_eq!(rl4oasd_repro::serve::proto::fault_code(fault), code);
    }
    assert_eq!(fault_from_code(0), None);
    assert_eq!(fault_from_code(5), None);
}
