//! Hibernation equivalence harness: freezing idle sessions into the cold
//! tier and thawing them on their next event must be **invisible** in every
//! label the system emits. For any interleaving, any freeze/thaw schedule
//! (including the adversarial freeze-every-tick policy), any shard count
//! and both serving paths (the synchronous [`ShardedEngine`] and the async
//! [`IngestEngine`]):
//!
//! * label streams and final labels are **byte-identical** to a
//!   never-hibernated engine on the same workload;
//! * a frozen session keeps its model epoch alive exactly like a hot one
//!   (drop-order test via `Weak`), so hibernation composes with hot-swap;
//! * closing a frozen session works (thaw + finish) and the memory-tier
//!   gauges always account for every open session, in exactly one tier.
//!
//! Run in CI's release-mode jobs alongside the shard/ingest/hot-swap
//! equivalence suites (with `-C debug-assertions` so the frozen-arena
//! bounds checks stay armed in release).

use proptest::prelude::*;
use rl4oasd_repro::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

mod common;
use common::{interleaved, trained_fixture, CityKind, EngineFixture};

/// One shared fixture for every test in this file (training is the
/// expensive part; the properties only exercise serving + freeze/thaw).
fn fixture() -> &'static EngineFixture {
    static FIXTURE: OnceLock<EngineFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| trained_fixture(CityKind::ChengduGrid, 0xC01D))
}

/// The shard counts the hibernation properties sweep (acceptance: 1/2/8).
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// Per-trajectory labels of a never-hibernated scalar engine — THE
/// reference every hibernating drive below compares against.
fn reference_labels(
    model: &Arc<TrainedModel>,
    net: &Arc<RoadNetwork>,
    trajs: &[MappedTrajectory],
) -> Vec<Vec<u8>> {
    let mut engine = StreamEngine::new(Arc::clone(model), Arc::clone(net));
    trajs
        .iter()
        .map(|t| {
            let h = engine.open(t.sd_pair().unwrap(), t.start_time);
            for &seg in &t.segments {
                engine.observe(h, seg);
            }
            engine.close(h)
        })
        .collect()
}

/// xorshift64* schedule shared by the ingest driver.
fn schedule(seed: u64) -> impl FnMut() -> u64 {
    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Synchronous path: for random interleavings and random hibernation
    /// policies — including `idle_ticks == 0 && sweep_every == 1`, which
    /// freezes every hot session at every tick — a hibernating
    /// `ShardedEngine` produces labels byte-identical to the
    /// never-hibernated reference at every shard count.
    #[test]
    fn hibernation_never_changes_labels_sync(
        seed in 0u64..10_000,
        n in 4usize..12,
        idle_ticks in 0u64..6,
        sweep_every in 1u64..4,
    ) {
        let fx = fixture();
        let trajs: Vec<&MappedTrajectory> = fx.trajs[..n].iter().collect();
        let expected = reference_labels(&fx.model, &fx.net, &fx.trajs[..n]);
        let cfg = HibernationConfig { idle_ticks, sweep_every };

        for shards in SHARD_COUNTS {
            let mut engine =
                ShardedEngine::new(Arc::clone(&fx.model), Arc::clone(&fx.net), shards)
                    .with_hibernation(cfg);
            let got = interleaved(&mut engine, &trajs, seed);
            prop_assert!(
                got == expected,
                "hibernation changed labels: {} shards, policy {:?}", shards, cfg
            );
            let stats = engine.stats();
            // Every freeze must thaw by the time all sessions closed.
            prop_assert_eq!(stats.sessions_hibernated, stats.sessions_rehydrated);
            if idle_ticks == 0 {
                prop_assert!(
                    stats.sessions_hibernated > 0,
                    "freeze-at-every-sweep schedule never froze anything"
                );
            }
        }
    }

    /// Async path: an `IngestEngine` built with the adversarial
    /// freeze-every-tick policy (sessions also swept at every flush
    /// boundary via `maintain`) delivers per-session subscription streams
    /// and final labels byte-identical to the never-hibernated reference,
    /// for every shard count, for both an immediate and a batching flush
    /// policy.
    #[test]
    fn hibernation_never_changes_labels_ingest(seed in 0u64..10_000, n in 4usize..10) {
        let fx = fixture();
        let trajs = &fx.trajs[..n];
        let expected = reference_labels(&fx.model, &fx.net, trajs);

        for shards in SHARD_COUNTS {
            for policy in [
                FlushPolicy::immediate(),
                FlushPolicy::new(4, Duration::from_micros(200)),
            ] {
                let engine = IngestEngine::with_hibernation(
                    Arc::clone(&fx.model),
                    Arc::clone(&fx.net),
                    shards,
                    IngestConfig { flush: policy, ..Default::default() },
                    HibernationConfig::freeze_every_tick(),
                );
                let handle = engine.handle();
                let mut next = schedule(seed);
                let submit = |session, seg| {
                    while handle.submit(session, seg) == Err(SubmitError::QueueFull) {
                        std::thread::yield_now();
                    }
                };

                let opened: Vec<_> = trajs
                    .iter()
                    .map(|t| handle.open(t.sd_pair().unwrap(), t.start_time).unwrap())
                    .collect();
                let mut pos = vec![0usize; trajs.len()];
                loop {
                    let mut advanced = false;
                    for (k, t) in trajs.iter().enumerate() {
                        if pos[k] < t.len() && !next().is_multiple_of(3) {
                            submit(opened[k].0, t.segments[pos[k]]);
                            pos[k] += 1;
                            advanced = true;
                        }
                    }
                    if !advanced && pos.iter().zip(trajs).all(|(&p, t)| p == t.len()) {
                        break;
                    }
                }

                for (k, (session, sub)) in opened.into_iter().enumerate() {
                    let finals = handle.close(session).unwrap().wait().unwrap();
                    prop_assert!(
                        finals == expected[k],
                        "finals diverged: session {} shards {} policy {:?}",
                        k, shards, policy
                    );
                    let mut stream = Vec::new();
                    while let Some(label) = sub.recv() {
                        stream.push(label);
                    }
                    prop_assert!(
                        stream.len() == trajs[k].len(),
                        "hibernation dropped events: session {} shards {}", k, shards
                    );
                }

                let report = engine.shutdown();
                let total: u64 = trajs.iter().map(|t| t.len() as u64).sum();
                prop_assert_eq!(report.ingest.flushed_events, total);
                prop_assert_eq!(report.engine.observe_events, total);
                prop_assert!(
                    report.engine.sessions_hibernated > 0,
                    "flush-boundary sweeps never froze a session"
                );
                prop_assert_eq!(
                    report.engine.sessions_hibernated,
                    report.engine.sessions_rehydrated
                );
                // All decisions were served by the single construction
                // epoch (satellite: per-epoch counters in the report).
                prop_assert_eq!(report.epoch_stats.len(), 1);
                prop_assert_eq!(report.epoch_stats[0].decisions, total);
            }
        }
    }
}

/// Drop order under hibernation: a frozen session must keep its pre-swap
/// model alive exactly like a hot one (its epoch id survives in the frozen
/// blob's prefix, outside the payload), and closing the frozen session —
/// thaw + finish — releases the old model's `Arc`.
#[test]
fn frozen_sessions_pin_their_model_until_closed() {
    let fx = fixture();
    // A private clone of the model so this test owns the only strong
    // handles to the "old" weights.
    let old = Arc::new(TrainedModel::clone(&fx.model));
    let old_weak = Arc::downgrade(&old);
    let mut engine = StreamEngine::new(old, Arc::clone(&fx.net))
        .with_hibernation(HibernationConfig::freeze_every_tick());

    let t = &fx.trajs[0];
    let s = engine.open(t.sd_pair().unwrap(), t.start_time);
    engine.observe(s, t.segments[0]); // end of tick: s freezes
    assert_eq!(engine.stats().frozen_sessions, 1, "schedule never froze");

    engine.swap_model(Arc::clone(&fx.model));
    assert!(
        old_weak.upgrade().is_some(),
        "old model freed while a frozen session still runs on it"
    );

    // Closing the frozen session thaws it on the old model and finishes.
    let labels = engine.close(s);
    assert_eq!(labels.len(), 1);
    assert!(
        old_weak.upgrade().is_none(),
        "old model not released when its last (frozen) session closed"
    );
}

/// Under the default (non-adversarial) policy, a session that goes quiet
/// while others keep streaming is hibernated by the tick sweep, and its
/// labels after rehydration continue exactly where they left off.
#[test]
fn idle_sessions_hibernate_under_default_policy_and_resume_exactly() {
    let fx = fixture();
    let quiet = fx.trajs.iter().find(|t| t.len() >= 3).unwrap();
    let busy = &fx.trajs[1];

    // Never-hibernated reference for the quiet session.
    let mut plain = StreamEngine::new(Arc::clone(&fx.model), Arc::clone(&fx.net));
    let hp = plain.open(quiet.sd_pair().unwrap(), quiet.start_time);
    for &seg in &quiet.segments {
        plain.observe(hp, seg);
    }
    let expected = plain.close(hp);

    let cfg = HibernationConfig::default();
    let mut engine =
        StreamEngine::new(Arc::clone(&fx.model), Arc::clone(&fx.net)).with_hibernation(cfg);
    let hq = engine.open(quiet.sd_pair().unwrap(), quiet.start_time);
    engine.observe(hq, quiet.segments[0]);

    // The busy session streams long enough for the quiet one to pass the
    // idle TTL and get swept at a tick boundary.
    let hb = engine.open(busy.sd_pair().unwrap(), busy.start_time);
    let ticks = (cfg.idle_ticks + 2 * cfg.sweep_every) as usize;
    for i in 0..ticks {
        engine.observe(hb, busy.segments[i % busy.len()]);
    }
    let stats = engine.stats();
    assert_eq!(stats.frozen_sessions, 1, "idle session was not swept");
    assert_eq!(stats.resident_sessions, 1);
    assert!(stats.frozen_bytes > 0);
    assert!(stats.frozen_footprint_bytes >= stats.frozen_bytes);

    // Rehydration is transparent: the quiet session resumes mid-trip and
    // finishes byte-identical to the never-hibernated reference.
    for &seg in &quiet.segments[1..] {
        engine.observe(hq, seg);
    }
    assert_eq!(engine.close(hq), expected, "rehydrated session diverged");
    assert!(engine.stats().sessions_rehydrated >= 1);
    engine.close(hb);
}
