//! Ingest/sync equivalence harness for the async front door: for any
//! [`FlushPolicy`] and any shard count, the per-session label sequence
//! coming out of [`IngestFrontDoor`] / [`IngestEngine`] must be
//! **byte-identical** to driving the same engine synchronously through
//! `observe_batch` — micro-batching and queueing are pure scheduling
//! transformations, never behavioural ones. Also pins the operational
//! contracts: graceful shutdown drains every accepted event, and a full
//! ingress queue reports `QueueFull` backpressure instead of blocking or
//! dropping.
//!
//! Run in CI's release job too, so the persistent-worker threading path is
//! exercised with optimisations on.

use proptest::prelude::*;
use rl4oasd::IngestEngine;
use rl4oasd_repro::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

mod common;
use common::{interleaved, trained_fixture, CityKind, EngineFixture};

/// One shared trained fixture for every test in this file (training is the
/// expensive part; the properties only exercise serving).
fn fixture() -> &'static EngineFixture {
    static FIXTURE: OnceLock<EngineFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| trained_fixture(CityKind::ChengduGrid, 0x1A6E))
}

/// The shard counts the equivalence properties sweep (acceptance: 1/2/8).
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// The flush-policy corners the properties sweep: one-event flushes, a
/// tiny batch bound, a delay-bound-only policy, and the default.
fn policies() -> [FlushPolicy; 4] {
    [
        FlushPolicy::immediate(),
        FlushPolicy::new(3, Duration::from_secs(3600)),
        FlushPolicy::new(1_000_000, Duration::from_micros(100)),
        FlushPolicy::default(),
    ]
}

/// Submits every trajectory through the front door with a seed-dependent
/// irregular interleaving (the same xorshift schedule shape as
/// `common::interleaved`), then closes every session, returning per-session
/// `(subscription labels, final labels)`.
fn drive_ingest<E>(
    handle: &IngestHandle<E>,
    trajs: &[&MappedTrajectory],
    schedule_seed: u64,
) -> Vec<(Vec<u8>, Vec<u8>)> {
    let opened: Vec<(SessionId, traj::Subscription)> = trajs
        .iter()
        .map(|t| {
            handle
                .open(t.sd_pair().unwrap(), t.start_time)
                .expect("open accepted")
        })
        .collect();
    let mut pos = vec![0usize; trajs.len()];
    let mut rng = schedule_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    loop {
        let mut advanced = false;
        for (k, t) in trajs.iter().enumerate() {
            if pos[k] < t.len() && next() % 3 != 0 {
                let segment = t.segments[pos[k]];
                while handle.submit(opened[k].0, segment) == Err(SubmitError::QueueFull) {
                    std::thread::yield_now();
                }
                pos[k] += 1;
                advanced = true;
            }
        }
        if !advanced && pos.iter().zip(trajs).all(|(&p, t)| p == t.len()) {
            break;
        }
    }
    opened
        .into_iter()
        .map(|(session, sub)| {
            let finals = handle
                .close(session)
                .expect("close accepted")
                .wait()
                .expect("session healthy");
            let mut provisional = Vec::new();
            while let Some(label) = sub.recv() {
                provisional.push(label);
            }
            (provisional, finals)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// RL4OASD: for random interleavings of `submit` calls, every shard
    /// count and every flush-policy corner, the async front door delivers
    /// per-session subscription streams and final labels byte-identical
    /// to the synchronous `observe_batch` drive of a single StreamEngine.
    #[test]
    fn ingest_matches_sync_observe_batch(seed in 0u64..10_000, n in 2usize..12) {
        let fx = fixture();
        let trajs: Vec<&MappedTrajectory> = fx.trajs.iter().take(n).collect();
        let mut single = StreamEngine::new(Arc::clone(&fx.model), Arc::clone(&fx.net));
        let expected_finals = interleaved(&mut single, &trajs, seed);
        // The provisional per-event labels of the sync path: observe one
        // session at a time (the engine contract makes the interleaving
        // irrelevant, so this is THE reference stream).
        let expected_stream: Vec<Vec<u8>> = trajs
            .iter()
            .map(|t| {
                let h = single.open(t.sd_pair().unwrap(), t.start_time);
                let labels = t.segments.iter().map(|&s| single.observe(h, s)).collect();
                single.close(h);
                labels
            })
            .collect();

        for shards in SHARD_COUNTS {
            for policy in policies() {
                let engine = IngestEngine::new(
                    Arc::clone(&fx.model),
                    Arc::clone(&fx.net),
                    shards,
                    IngestConfig { flush: policy, ..Default::default() },
                );
                let got = drive_ingest(&engine.handle(), &trajs, seed);
                let report = engine.shutdown();
                for (k, (stream, finals)) in got.iter().enumerate() {
                    prop_assert!(
                        finals == &expected_finals[k],
                        "final labels diverged: session {} shards {} policy {:?}",
                        k, shards, policy
                    );
                    prop_assert!(
                        stream == &expected_stream[k],
                        "subscription stream diverged: session {} shards {} policy {:?}",
                        k, shards, policy
                    );
                }
                let total: u64 = trajs.iter().map(|t| t.len() as u64).sum();
                prop_assert_eq!(report.ingest.flushed_events, total);
                prop_assert_eq!(report.engine.observe_events, total);
                prop_assert_eq!(report.engine.sessions_closed, trajs.len() as u64);
            }
        }
    }

    /// IBOAT through the generic combinator: per-session labels identical
    /// to the synchronous mux for every shard count.
    #[test]
    fn ingest_baseline_matches_sync_mux(seed in 0u64..10_000, n in 2usize..10) {
        let fx = fixture();
        let trajs: Vec<&MappedTrajectory> = fx.trajs.iter().take(n).collect();
        let mut reference = baselines::iboat_engine(Arc::clone(&fx.stats), 0.05, 0.5);
        let expected = interleaved(&mut reference, &trajs, seed);

        for shards in SHARD_COUNTS {
            let door = baselines::ingest_iboat_engine(
                Arc::clone(&fx.stats),
                0.05,
                0.5,
                shards,
                IngestConfig {
                    flush: FlushPolicy::new(4, Duration::from_micros(100)),
                    ..Default::default()
                },
            );
            let got = drive_ingest(&door.handle(), &trajs, seed);
            let report = door.shutdown();
            let finals: Vec<Vec<u8>> = got.into_iter().map(|(_, f)| f).collect();
            prop_assert!(finals == expected, "IBOAT diverged at {} shards", shards);
            let open: usize = report.engines.iter().map(|e| e.active_sessions()).sum();
            prop_assert_eq!(open, 0);
        }
    }
}

/// Graceful shutdown flushes and delivers every event accepted before the
/// call — even with a policy that would never flush on its own — and the
/// still-open sessions survive inside the returned engines.
#[test]
fn shutdown_drains_every_accepted_event() {
    let fx = fixture();
    let trajs: Vec<&MappedTrajectory> = fx.trajs.iter().take(6).collect();
    let engine = IngestEngine::new(
        Arc::clone(&fx.model),
        Arc::clone(&fx.net),
        2,
        IngestConfig {
            flush: FlushPolicy::new(1_000_000, Duration::from_secs(3600)),
            ..Default::default()
        },
    );
    let handle = engine.handle();
    let opened: Vec<_> = trajs
        .iter()
        .map(|t| handle.open(t.sd_pair().unwrap(), t.start_time).unwrap())
        .collect();
    let mut submitted = 0u64;
    for (k, t) in trajs.iter().enumerate() {
        for &seg in t.segments.iter().take(5) {
            while handle.submit(opened[k].0, seg) == Err(SubmitError::QueueFull) {
                std::thread::yield_now();
            }
            submitted += 1;
        }
    }
    let report = engine.shutdown();
    assert_eq!(report.ingest.submitted, submitted);
    assert_eq!(
        report.ingest.flushed_events, submitted,
        "shutdown must flush the never-flushed batches"
    );
    assert_eq!(report.ingest.latency.count(), submitted);
    // Every accepted event's label is deliverable after shutdown returns.
    let mut delivered = 0usize;
    for (_, sub) in &opened {
        let mut labels = Vec::new();
        while let Some(l) = sub.recv() {
            labels.push(l);
        }
        delivered += labels.len();
    }
    assert_eq!(delivered as u64, submitted);
    // Sessions were never closed: their state is intact in the engines.
    assert_eq!(report.engine.sessions_opened, trajs.len() as u64);
    assert_eq!(report.engine.sessions_closed, 0);
    // And the door is now sealed.
    assert_eq!(
        handle.submit(opened[0].0, trajs[0].segments[0]),
        Err(SubmitError::ShutDown)
    );
    assert!(handle.open(trajs[0].sd_pair().unwrap(), 0.0).is_err());
}

/// A deliberately stalled engine: `observe` blocks until the test releases
/// it, so the ingress queue backs up deterministically.
#[derive(Clone)]
struct Gate {
    entered: std::sync::mpsc::Sender<()>,
    release: Arc<std::sync::Mutex<std::sync::mpsc::Receiver<()>>>,
}

struct GatedDetector {
    gate: Gate,
    labels: Vec<u8>,
}

impl OnlineDetector for GatedDetector {
    fn name(&self) -> &'static str {
        "Gated"
    }
    fn begin(&mut self, _sd: SdPair, _start_time: f64) {
        self.labels.clear();
    }
    fn observe(&mut self, _segment: SegmentId) -> u8 {
        self.gate.entered.send(()).expect("test is listening");
        self.gate
            .release
            .lock()
            .unwrap()
            .recv()
            .expect("test releases every event");
        self.labels.push(0);
        0
    }
    fn finish(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.labels)
    }
}

/// Backpressure contract: once the worker is stalled inside a flush and
/// the bounded ingress queue is full, `submit` reports `QueueFull` without
/// blocking or dropping; accepted events all survive and get labelled once
/// the stall clears.
#[test]
fn full_queue_reports_queue_full_and_loses_nothing() {
    const CAPACITY: usize = 4;
    let (entered_tx, entered_rx) = std::sync::mpsc::channel();
    let (release_tx, release_rx) = std::sync::mpsc::channel();
    let gate = Gate {
        entered: entered_tx,
        release: Arc::new(std::sync::Mutex::new(release_rx)),
    };
    let door = IngestFrontDoor::build(
        1,
        move |_| {
            let gate = gate.clone();
            SessionMux::named("Gated", move || GatedDetector {
                gate: gate.clone(),
                labels: Vec::new(),
            })
        },
        IngestConfig {
            flush: FlushPolicy::immediate(),
            queue_capacity: CAPACITY,
            ..Default::default()
        },
    );
    let handle = door.handle();
    let (session, sub) = handle
        .open(
            SdPair {
                source: SegmentId(0),
                dest: SegmentId(9),
            },
            0.0,
        )
        .unwrap();

    // First event: the worker picks it up and stalls inside observe_batch,
    // leaving the queue empty.
    handle.submit(session, SegmentId(1)).unwrap();
    entered_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("worker entered the stalled flush");

    // Fill the queue to capacity behind the stalled worker...
    for seg in 0..CAPACITY as u32 {
        assert_eq!(handle.submit(session, SegmentId(seg)), Ok(()));
    }
    // ...and the next submit must be rejected, not blocked or dropped.
    assert_eq!(
        handle.submit(session, SegmentId(99)),
        Err(SubmitError::QueueFull)
    );
    assert_eq!(handle.rejected_events(), 1);
    assert_eq!(handle.accepted_events(), (CAPACITY + 1) as u64);

    // Release the stall: one release per accepted event.
    for _ in 0..CAPACITY + 1 {
        release_tx.send(()).unwrap();
    }
    // The queue may still be draining; close retries through backpressure.
    let ticket = loop {
        match handle.close(session) {
            Ok(ticket) => break ticket,
            Err(SubmitError::QueueFull) => std::thread::yield_now(),
            Err(e) => panic!("close rejected: {e}"),
        }
    };
    let finals = ticket.wait().unwrap();
    assert_eq!(finals.len(), CAPACITY + 1, "every accepted event labelled");
    let mut streamed = Vec::new();
    while let Some(l) = sub.recv() {
        streamed.push(l);
    }
    assert_eq!(streamed.len(), CAPACITY + 1);

    let report = door.shutdown();
    assert_eq!(report.stats.submitted, (CAPACITY + 1) as u64);
    assert_eq!(report.stats.rejected_full, 1);
    assert_eq!(report.stats.flushed_events, (CAPACITY + 1) as u64);
}

/// `close` flushes the session's pending events first: final labels cover
/// every accepted event even when the batch never filled.
#[test]
fn close_flushes_pending_events_first() {
    let fx = fixture();
    let t = &fx.trajs[0];
    let engine = IngestEngine::new(
        Arc::clone(&fx.model),
        Arc::clone(&fx.net),
        1,
        IngestConfig {
            flush: FlushPolicy::new(1_000_000, Duration::from_secs(3600)),
            ..Default::default()
        },
    );
    let handle = engine.handle();
    let (session, _sub) = handle.open(t.sd_pair().unwrap(), t.start_time).unwrap();
    for &seg in &t.segments {
        while handle.submit(session, seg) == Err(SubmitError::QueueFull) {
            std::thread::yield_now();
        }
    }
    let finals = handle.close(session).unwrap().wait().unwrap();
    assert_eq!(finals.len(), t.len());
    engine.shutdown();
}
