//! Cross-crate detector invariants: every detector (RL4OASD and all seven
//! baselines) must satisfy the online-detection contract on the same data.

use baselines::{
    Ctss, Dbtod, Iboat, RouteStats, ScoringDetector, Seq2SeqDetector, Seq2SeqKind, Thresholded,
    VsaeConfig,
};
use rl4oasd_repro::prelude::*;
use rnet::{CityBuilder, CityConfig};
use std::sync::Arc;

struct Fixture {
    net: RoadNetwork,
    train: Dataset,
    test: Dataset,
    stats: Arc<RouteStats>,
}

fn fixture(seed: u64) -> Fixture {
    let net = CityBuilder::new(CityConfig::tiny(seed)).build();
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 3,
            trajs_per_pair: (40, 50),
            anomaly_ratio: 0.1,
            ..TrafficConfig::tiny(seed)
        },
    );
    let generated = sim.generate();
    let train = Dataset::from_generated(&generated);
    let test = Dataset::from_generated(&sim.generate_from_pairs(&generated.pairs, (4, 5), 0.4, 1));
    let stats = Arc::new(RouteStats::fit(&train));
    Fixture {
        net,
        train,
        test,
        stats,
    }
}

fn check_contract(det: &mut dyn OnlineDetector, test: &Dataset) {
    for t in &test.trajectories {
        let labels = det.label_trajectory(t);
        assert_eq!(labels.len(), t.len(), "{}: length mismatch", det.name());
        assert!(
            labels.iter().all(|&l| l <= 1),
            "{}: labels must be 0/1",
            det.name()
        );
        // re-running the same trajectory gives the same answer
        let again = det.label_trajectory(t);
        assert_eq!(labels, again, "{}: must be deterministic", det.name());
    }
}

#[test]
fn all_baselines_satisfy_the_contract() {
    let f = fixture(1);
    let vocab = f.net.num_segments();
    let vsae_cfg = VsaeConfig {
        embed_dim: 8,
        hidden_dim: 10,
        latent_dim: 6,
        epochs: 1,
        max_train: 100,
        ..Default::default()
    };

    let mut iboat = Thresholded::new(Iboat::new(Arc::clone(&f.stats), 0.05), 0.8);
    check_contract(&mut iboat, &f.test);

    let mut dbtod_inner = Dbtod::new(&f.net, Arc::clone(&f.stats));
    dbtod_inner.fit(&f.train, 1, 0.05);
    let mut dbtod = Thresholded::new(dbtod_inner, 1.5);
    check_contract(&mut dbtod, &f.test);

    let mut ctss = Thresholded::new(Ctss::new(&f.net, Arc::clone(&f.stats)), 80.0);
    check_contract(&mut ctss, &f.test);

    for kind in [
        Seq2SeqKind::Sae,
        Seq2SeqKind::Vsae,
        Seq2SeqKind::GmVsae(3),
        Seq2SeqKind::SdVsae(3),
    ] {
        let mut m = Seq2SeqDetector::new(kind, vocab, vsae_cfg.clone());
        m.fit(&f.train);
        let mut det = Thresholded::new(m, 5.0);
        check_contract(&mut det, &f.test);
    }
}

#[test]
fn rl4oasd_satisfies_the_contract() {
    let f = fixture(2);
    let cfg = Rl4oasdConfig {
        pretrain_trajs: 80,
        joint_trajs: 80,
        ..Rl4oasdConfig::tiny(2)
    };
    let model = rl4oasd::train(&f.net, &f.train, &cfg);
    let mut det = Rl4oasdDetector::new(&model, &f.net);
    check_contract(&mut det, &f.test);
}

#[test]
fn streaming_equals_batch_for_scorers() {
    // ScoringDetector::score_trajectory must equal manual streaming.
    let f = fixture(3);
    let mut iboat = Iboat::new(Arc::clone(&f.stats), 0.05);
    for t in f.test.trajectories.iter().take(10) {
        let batch = iboat.score_trajectory(t);
        iboat.begin_scoring(t.sd_pair().unwrap(), t.start_time);
        let streamed: Vec<f64> = t.segments.iter().map(|&s| iboat.score_next(s)).collect();
        assert_eq!(batch, streamed);
    }
}

#[test]
fn threshold_extremes_produce_degenerate_labels() {
    let f = fixture(4);
    // threshold +inf => nothing anomalous
    let mut never = Thresholded::new(Iboat::new(Arc::clone(&f.stats), 0.05), f64::INFINITY);
    for t in f.test.trajectories.iter().take(5) {
        assert!(never.label_trajectory(t).iter().all(|&l| l == 0));
    }
    // threshold -inf => everything anomalous except the pinned endpoints
    let mut always = Thresholded::new(Iboat::new(Arc::clone(&f.stats), 0.05), f64::NEG_INFINITY);
    for t in f.test.trajectories.iter().take(5) {
        let labels = always.label_trajectory(t);
        assert_eq!(labels[0], 0);
        assert_eq!(*labels.last().unwrap(), 0);
        assert!(labels[1..labels.len() - 1].iter().all(|&l| l == 1));
    }
}
