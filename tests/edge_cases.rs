//! Edge-case and idempotence tests across crate boundaries — behaviours a
//! downstream user would hit that the per-module unit tests don't cover.

use proptest::prelude::*;
use rl4oasd_repro::prelude::*;
use rnet::{CityBuilder, CityConfig, NodeId, SegmentIndex};

fn city(seed: u64) -> RoadNetwork {
    CityBuilder::new(CityConfig::tiny(seed)).build()
}

#[test]
fn single_segment_trajectory_is_normal() {
    // A trip consisting of the source segment only: endpoints pinned, so
    // the label must be [0] for every detector kind.
    let net = city(31);
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 2,
            trajs_per_pair: (25, 30),
            ..TrafficConfig::tiny(31)
        },
    );
    let train = Dataset::from_generated(&sim.generate());
    let model = rl4oasd::train(&net, &train, &Rl4oasdConfig::tiny(31));
    let mut det = Rl4oasdDetector::new(&model, &net);
    let seg = train.trajectories[0].segments[0];
    let t = MappedTrajectory {
        id: traj::TrajectoryId(0),
        segments: vec![seg],
        start_time: 0.0,
    };
    assert_eq!(det.label_trajectory(&t), vec![0]);
}

#[test]
fn detector_handles_unseen_sd_pair() {
    // A trip between segments never seen together in training must not
    // panic; the NRF falls back to "anomalous" for unknown transitions.
    let net = city(32);
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 2,
            trajs_per_pair: (25, 30),
            ..TrafficConfig::tiny(32)
        },
    );
    let train = Dataset::from_generated(&sim.generate());
    let model = rl4oasd::train(&net, &train, &Rl4oasdConfig::tiny(32));
    let mut det = Rl4oasdDetector::new(&model, &net);
    // fabricate a connected path that is not a trained SD pair
    let start = SegmentId(0);
    let mut segments = vec![start];
    let mut cur = start;
    for _ in 0..6 {
        let succ = net.successors(cur);
        cur = succ[0];
        segments.push(cur);
    }
    let t = MappedTrajectory {
        id: traj::TrajectoryId(0),
        segments,
        start_time: 7.5 * 3600.0,
    };
    let labels = det.label_trajectory(&t);
    assert_eq!(labels.len(), t.len());
    assert_eq!(labels[0], 0);
    assert_eq!(*labels.last().unwrap(), 0);
}

#[test]
fn online_learner_is_cumulative() {
    // Fine-tuning twice on the same data must not degrade below a single
    // fine-tune catastrophically (sanity on optimizer statefulness).
    let net = city(33);
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 3,
            trajs_per_pair: (50, 60),
            anomaly_ratio: 0.1,
            ..TrafficConfig::tiny(33)
        },
    );
    let generated = sim.generate();
    let train = Dataset::from_generated(&generated);
    let model = rl4oasd::train(&net, &train, &Rl4oasdConfig::tiny(33));
    let mut learner = rl4oasd::OnlineLearner::new(model);
    let f1_of = |m: &TrainedModel| {
        let mut det = Rl4oasdDetector::new(m, &net);
        let outputs: Vec<Vec<u8>> = train
            .trajectories
            .iter()
            .map(|t| det.label_trajectory(t))
            .collect();
        let truths: Vec<Vec<u8>> = train
            .trajectories
            .iter()
            .map(|t| train.truth(t.id).unwrap().to_vec())
            .collect();
        evaluate(&outputs, &truths).f1
    };
    learner.fine_tune(&net, &train);
    let after_one = f1_of(&learner.model);
    learner.fine_tune(&net, &train);
    let after_two = f1_of(&learner.model);
    assert!(
        after_two > after_one - 0.25,
        "second fine-tune collapsed: {after_one} -> {after_two}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Projection onto a polyline is never farther than to any vertex.
    #[test]
    fn projection_beats_vertices(px in -500.0f64..1500.0, py in -500.0f64..1500.0) {
        let net = city(34);
        let p = rnet::Point::new(px, py);
        for seg in net.segments().iter().take(50) {
            let (proj, _) = rnet::geo::project_onto_polyline(&p, &seg.geometry).unwrap();
            for v in &seg.geometry {
                prop_assert!(proj.distance <= p.dist(v) + 1e-9);
            }
        }
    }

    /// Spatial-index candidates always include the true nearest segment
    /// when the radius is large enough to contain it.
    #[test]
    fn index_finds_true_nearest(px in 0.0f64..700.0, py in 0.0f64..700.0) {
        let net = city(35);
        let index = SegmentIndex::build(&net, 80.0);
        let p = rnet::Point::new(px, py);
        // brute force nearest
        let mut best = (f64::INFINITY, SegmentId(0));
        for seg in net.segments() {
            let (proj, _) = rnet::geo::project_onto_polyline(&p, &seg.geometry).unwrap();
            if proj.distance < best.0 {
                best = (proj.distance, seg.id);
            }
        }
        let got = index.nearest(&net, &p, best.0 + 1.0).expect("in range");
        prop_assert!((got.distance - best.0).abs() < 1e-9);
    }

    /// Dijkstra satisfies the triangle inequality over intermediate nodes.
    #[test]
    fn dijkstra_triangle_inequality(a in 0u32..64, b in 0u32..64, c in 0u32..64) {
        let net = city(36);
        let cost = |x: u32, y: u32| {
            rnet::shortest_path(&net, NodeId(x), NodeId(y)).map(|p| p.cost)
        };
        if let (Some(ab), Some(bc), Some(ac)) = (cost(a, b), cost(b, c), cost(a, c)) {
            prop_assert!(ac <= ab + bc + 1e-6);
        }
    }

    /// Thresholded detectors are monotone: a higher threshold never flags
    /// more segments.
    #[test]
    fn threshold_monotonicity(t1 in 0.0f64..1.0, t2 in 0.0f64..1.0) {
        use baselines::{Iboat, RouteStats, Thresholded};
        use std::sync::Arc;
        let net = city(37);
        let sim = TrafficSimulator::new(&net, TrafficConfig {
            num_sd_pairs: 2,
            trajs_per_pair: (15, 20),
            ..TrafficConfig::tiny(37)
        });
        let ds = Dataset::from_generated(&sim.generate());
        let stats = Arc::new(RouteStats::fit(&ds));
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let mut d_lo = Thresholded::new(Iboat::new(Arc::clone(&stats), 0.05), lo);
        let mut d_hi = Thresholded::new(Iboat::new(Arc::clone(&stats), 0.05), hi);
        for t in ds.trajectories.iter().take(5) {
            let flags_lo: usize = d_lo.label_trajectory(t).iter().map(|&l| l as usize).sum();
            let flags_hi: usize = d_hi.label_trajectory(t).iter().map(|&l| l as usize).sum();
            prop_assert!(flags_hi <= flags_lo, "threshold {hi} flagged more than {lo}");
        }
    }

    /// F1 evaluation is invariant to the order of the corpus.
    #[test]
    fn metric_order_invariance(seed in 0u64..200) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..8)
            .map(|k| {
                let n = 4 + (k % 5);
                let o: Vec<u8> = (0..n).map(|i| ((i + k) % 3 == 0) as u8).collect();
                let t: Vec<u8> = (0..n).map(|i| ((i * 2 + k) % 4 == 0) as u8).collect();
                (o, t)
            })
            .collect();
        let m1 = evaluate(
            &pairs.iter().map(|(o, _)| o.clone()).collect::<Vec<_>>(),
            &pairs.iter().map(|(_, t)| t.clone()).collect::<Vec<_>>(),
        );
        pairs.shuffle(&mut rng);
        let m2 = evaluate(
            &pairs.iter().map(|(o, _)| o.clone()).collect::<Vec<_>>(),
            &pairs.iter().map(|(_, t)| t.clone()).collect::<Vec<_>>(),
        );
        prop_assert!((m1.f1 - m2.f1).abs() < 1e-12);
        prop_assert!((m1.tf1 - m2.tf1).abs() < 1e-12);
    }
}
