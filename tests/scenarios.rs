//! Scenario-engine replay determinism and regime edge cases.
//!
//! The contract under test (ARCHITECTURE.md invariant 13): a scenario is
//! a pure function of `(seed, spec)` — two generations are byte-identical
//! — and replaying the same trace through the sync sharded path or the
//! async ingest front door, at any shard count and flush policy, yields
//! byte-identical final labels. The file also mirrors the grid network
//! invariants (A* reachability, spatial-index round-trip, shard-count
//! invariance) on the Porto-style radial city.

mod common;

use common::{interleaved, trained_fixture, CityKind, EngineFixture};
use proptest::prelude::*;
use rl4oasd_repro::prelude::*;
use rnet::NodeId;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Trained scenario fixture per network kind, shared across tests.
struct ScenarioFixture {
    world: World,
    model: Arc<TrainedModel>,
}

fn fixture(kind: NetworkKind) -> &'static ScenarioFixture {
    static GRID: OnceLock<ScenarioFixture> = OnceLock::new();
    static RADIAL: OnceLock<ScenarioFixture> = OnceLock::new();
    let (cell, seed) = match kind {
        NetworkKind::ChengduGrid => (&GRID, 0x5CE4_0001u64),
        NetworkKind::PortoRadial => (&RADIAL, 0x5CE4_0002u64),
    };
    cell.get_or_init(|| {
        let world = World::tiny(kind, seed);
        let model = Arc::new(world.train(&Rl4oasdConfig::tiny(seed)));
        ScenarioFixture { world, model }
    })
}

fn runner(fx: &ScenarioFixture) -> ScenarioRunner {
    ScenarioRunner::new(Arc::clone(&fx.model), Arc::clone(&fx.world.net))
}

/// A short spec with no regimes, used as the base for edge-case variants.
fn base_spec(kind: NetworkKind, ticks: u32) -> ScenarioSpec {
    ScenarioSpec {
        name: "edge_case".into(),
        network: kind,
        ticks,
        arrivals_per_tick: 0.6,
        regimes: Vec::new(),
    }
}

fn anomalous_mass(truth: &[Vec<u8>]) -> usize {
    truth
        .iter()
        .map(|t| t.iter().filter(|&&l| l == 1).count())
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Satellite 1 — the replay-determinism property: any `(seed, spec)`
    /// from the standard suite on either network generates byte-identical
    /// traces across two runs, and replays to byte-identical labels across
    /// the sync driver at 1/2/8 shards and the ingest driver at 1/2/8
    /// shards under two flush policies.
    #[test]
    fn replay_is_byte_identical_across_runs_and_drivers(
        seed in 0u64..1000,
        scenario in 0usize..6,
        kind_idx in 0usize..2,
    ) {
        let kind = if kind_idx == 1 {
            NetworkKind::PortoRadial
        } else {
            NetworkKind::ChengduGrid
        };
        let fx = fixture(kind);
        let spec = standard_suite(kind, 48, 0.5).swap_remove(scenario);

        let trace = EventTrace::generate(&fx.world, &spec, seed);
        let again = EventTrace::generate(&fx.world, &spec, seed);
        prop_assert_eq!(trace.digest(), again.digest());
        prop_assert_eq!(&trace, &again);

        let runner = runner(fx);
        let reference = runner.run(&trace, &Driver::Sync { shards: 1 });
        prop_assert_eq!(&reference.truth, &trace.truth);
        prop_assert_eq!(reference.sessions, trace.sessions as usize);
        for shards in [2usize, 8] {
            let out = runner.run(&trace, &Driver::Sync { shards });
            prop_assert_eq!(&out.labels, &reference.labels);
        }
        for shards in [1usize, 2, 8] {
            for flush in [
                FlushPolicy::immediate(),
                FlushPolicy::new(4, Duration::from_micros(200)),
            ] {
                let out = runner.run(
                    &trace,
                    &Driver::Ingest {
                        shards,
                        flush,
                        queue_capacity: 1024,
                        backpressure: Backpressure::Retry,
                    },
                );
                prop_assert_eq!(&out.labels, &reference.labels);
                prop_assert_eq!(&out.truth, &trace.truth);
                prop_assert_eq!(out.rejected, 0);
            }
        }
    }
}

/// Satellite 2a — a total dropout burst every tick drops every point: the
/// trace carries zero events, every session is zero-length, and both
/// drivers close all of them cleanly with empty labels.
#[test]
fn total_dropout_yields_zero_length_sessions_on_both_drivers() {
    let kind = NetworkKind::ChengduGrid;
    let fx = fixture(kind);
    let mut spec = base_spec(kind, 40);
    spec.regimes.push(Regime::Dropout {
        period: 1,
        burst_len: 1,
        drop_prob: 1.0,
    });
    let trace = EventTrace::generate(&fx.world, &spec, 0xD20);
    assert!(trace.sessions > 0, "arrivals must still open sessions");
    assert_eq!(trace.events, 0, "every point must be dropped");
    assert!(trace.truth.iter().all(|t| t.is_empty()));

    let runner = runner(fx);
    for driver in [
        Driver::Sync { shards: 2 },
        Driver::Ingest {
            shards: 2,
            flush: FlushPolicy::immediate(),
            queue_capacity: 64,
            backpressure: Backpressure::Retry,
        },
    ] {
        let out = runner.run(&trace, &driver);
        assert_eq!(out.sessions, trace.sessions as usize);
        assert_eq!(out.events, 0);
        assert!(
            out.labels.iter().all(|l| l.is_empty()),
            "zero-length sessions must close with empty labels"
        );
    }
}

/// Satellite 2b — an incident window covering the whole trace: a
/// near-zero MTTH fires the incident immediately and its duration outlasts
/// the trace, so one SD pair detours for the entire run. The trace must
/// carry more anomalous mass than the regime-free control, and the two
/// drivers must still agree byte-for-byte.
#[test]
fn incident_window_covering_whole_trace_replays_identically() {
    let kind = NetworkKind::PortoRadial;
    let fx = fixture(kind);
    let mut spec = base_spec(kind, 60);
    spec.regimes.push(Regime::Incidents {
        mtth: 0.001,
        duration: u32::MAX,
        cooldown: 0,
        detour_prob: 1.0,
    });
    let trace = EventTrace::generate(&fx.world, &spec, 0x1C1);
    let control = EventTrace::generate(&fx.world, &base_spec(kind, 60), 0x1C1);
    assert!(
        anomalous_mass(&trace.truth) > anomalous_mass(&control.truth),
        "a whole-trace incident must force extra detours"
    );

    let runner = runner(fx);
    let sync = runner.run(&trace, &Driver::Sync { shards: 2 });
    let ingest = runner.run(
        &trace,
        &Driver::Ingest {
            shards: 2,
            flush: FlushPolicy::new(4, Duration::from_micros(200)),
            queue_capacity: 256,
            backpressure: Backpressure::Retry,
        },
    );
    assert_eq!(sync.labels, ingest.labels);
    assert_eq!(sync.truth, ingest.truth);
}

/// Satellite 2c — arrival waves exceeding the ingress queue: a standing
/// 25-sessions/tick wave against a capacity-2 queue whose flush policy
/// never fires on its own (so the worker stalls in close-forced flushes
/// while the producer keeps submitting). The door must report explicit
/// `QueueFull` backpressure — counted as shed events — and the run must
/// terminate with per-session labels exactly covering the accepted
/// events. No hang, no lost accounting.
#[test]
fn arrival_wave_overflow_reports_explicit_backpressure() {
    let kind = NetworkKind::ChengduGrid;
    let fx = fixture(kind);
    let mut spec = base_spec(kind, 30);
    spec.regimes.push(Regime::ArrivalWave {
        period: 4,
        offset: 0,
        len: 4,
        peak: 25.0,
    });
    let trace = EventTrace::generate(&fx.world, &spec, 0xF100D);
    assert!(
        trace.events > 1_000,
        "the wave must actually flood the door"
    );

    let out = runner(fx).run(
        &trace,
        &Driver::Ingest {
            shards: 1,
            flush: FlushPolicy::new(1_000_000, Duration::from_secs(3600)),
            queue_capacity: 2,
            backpressure: Backpressure::Shed,
        },
    );
    assert!(
        out.rejected > 0,
        "a capacity-2 queue under a 25x wave must shed; got {} rejected of {}",
        out.rejected,
        trace.events
    );
    assert_eq!(out.events + out.rejected, trace.events);
    assert_eq!(out.labels.len(), trace.sessions as usize);
    for (labels, truth) in out.labels.iter().zip(&out.truth) {
        assert_eq!(
            labels.len(),
            truth.len(),
            "labels must cover exactly the accepted events"
        );
    }
}

/// Satellite 2c (control) — the same overload replayed under
/// `Backpressure::Retry` loses nothing and still matches the sync path:
/// backpressure is a delivery policy, not a correctness leak.
#[test]
fn arrival_wave_overflow_under_retry_matches_sync() {
    let kind = NetworkKind::ChengduGrid;
    let fx = fixture(kind);
    let mut spec = base_spec(kind, 20);
    spec.regimes.push(Regime::ArrivalWave {
        period: 4,
        offset: 0,
        len: 4,
        peak: 15.0,
    });
    let trace = EventTrace::generate(&fx.world, &spec, 0xF100E);
    let runner = runner(fx);
    let sync = runner.run(&trace, &Driver::Sync { shards: 1 });
    let out = runner.run(
        &trace,
        &Driver::Ingest {
            shards: 1,
            flush: FlushPolicy::immediate(),
            queue_capacity: 2,
            backpressure: Backpressure::Retry,
        },
    );
    assert_eq!(out.rejected, 0);
    assert_eq!(out.events, trace.events);
    assert_eq!(out.labels, sync.labels);
}

// ---------------------------------------------------------------------
// Satellite 3 — Porto-network invariants mirroring the grid suites.
// ---------------------------------------------------------------------

/// Every sampled node pair on the radial city is A*-reachable in both
/// directions (the grid version of this lives in `tests/edge_cases.rs`).
#[test]
fn porto_astar_reachability_both_directions() {
    let net = common::build_city(CityKind::PortoRadial, 0x9027);
    let n = net.num_nodes() as u32;
    assert!(n > 20);
    for step in [1u32, 3, 7] {
        for t in (step..n).step_by(5) {
            let fwd = rnet::astar(&net, NodeId(0), NodeId(t));
            let back = rnet::astar(&net, NodeId(t), NodeId(0));
            assert!(fwd.is_some(), "node {t} unreachable from the centre");
            assert!(back.is_some(), "centre unreachable from node {t}");
        }
    }
}

/// Spatial-index round-trip on the radial city: querying a point on a
/// segment's own geometry finds that segment at ~zero distance.
#[test]
fn porto_segment_index_round_trip() {
    let net = common::build_city(CityKind::PortoRadial, 0x9027);
    let index = rnet::SegmentIndex::build(&net, 80.0);
    for seg in net.segments().iter().step_by(3) {
        let p = seg.geometry[seg.geometry.len() / 2];
        let hits = index.candidates(&net, &p, 5.0);
        assert!(
            hits.iter()
                .any(|c| c.segment == seg.id && c.distance < 1e-6),
            "index lost segment {:?}",
            seg.id
        );
    }
}

/// Shard-count invariance holds on the Porto network too: the shared
/// fixture (satellite 4) trains on the radial city and the interleaved
/// schedule labels identically at 1, 2 and 8 shards.
#[test]
fn porto_engine_labels_are_shard_count_invariant() {
    static FIXTURE: OnceLock<EngineFixture> = OnceLock::new();
    let fx = FIXTURE.get_or_init(|| trained_fixture(CityKind::PortoRadial, 0x9027_0004));
    let trajs: Vec<&MappedTrajectory> = fx.trajs.iter().take(24).collect();
    let mut single = ShardedEngine::new(Arc::clone(&fx.model), Arc::clone(&fx.net), 1);
    let expected = interleaved(&mut single, &trajs, 0x5EED);
    for shards in [2usize, 8] {
        let mut engine = ShardedEngine::new(Arc::clone(&fx.model), Arc::clone(&fx.net), shards);
        let got = interleaved(&mut engine, &trajs, 0x5EED);
        assert_eq!(got, expected, "labels diverged at {shards} shards");
    }
}
