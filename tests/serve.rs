//! The network serving tier end to end (ARCHITECTURE.md invariant 16).
//!
//! The contract under test: putting the ingest front door behind the
//! `oasd-serve` wire protocol adds transport, never semantics —
//!
//! * labels received over loopback are **byte-identical** to the
//!   in-process drivers for the same seeded [`EventTrace`], at 1/2/8
//!   shards (the tentpole property, via [`Driver::Net`]);
//! * accounting stays exact across the wire and across graceful
//!   shutdown: `submitted == flushed + shed + quarantined`, with every
//!   session drained;
//! * tenants are isolated: quota exhaustion sheds only the exhausted
//!   tenant's opens, and a model swap scoped to tenant A never relabels
//!   tenant B's sessions (nor A's already-open ones — epochs pin at
//!   open);
//! * malformed input — wrong preamble, garbage frames, bogus HTTP —
//!   produces typed errors / 4xx responses and never wedges a listener,
//!   pairing with the engine's `admit` poison quarantine on the data
//!   path.

mod common;

use common::{trained_fixture, CityKind, EngineFixture};
use proptest::prelude::*;
use rl4oasd_repro::prelude::*;
use rl4oasd_repro::serve::proto::{decode_frame, fault_from_code, frame_bytes};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn fixture() -> &'static EngineFixture {
    static FX: OnceLock<EngineFixture> = OnceLock::new();
    FX.get_or_init(|| trained_fixture(CityKind::ChengduGrid, 0x5E4E_0001))
}

fn loopback_server(fx: &EngineFixture, shards: usize, tenants: Vec<TenantSpec>) -> Server {
    Server::start(
        Arc::clone(&fx.model),
        Arc::clone(&fx.net),
        ServerConfig {
            shards,
            ingest: IngestConfig {
                flush: FlushPolicy::immediate(),
                obs: Obs::new(ObsConfig::enabled()),
                ..IngestConfig::default()
            },
            tenants,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback listeners")
}

/// In-process reference: the same trajectory through a 1-shard sync
/// engine — the byte-identity baseline for single-session wire runs.
fn reference_labels(
    model: &Arc<TrainedModel>,
    net: &Arc<RoadNetwork>,
    traj: &MappedTrajectory,
) -> Vec<u8> {
    let mut engine = ShardedEngine::new(Arc::clone(model), Arc::clone(net), 1);
    let h = engine.open(traj.sd_pair().expect("non-empty"), traj.start_time);
    let mut out = Vec::new();
    for &seg in &traj.segments {
        engine.observe_batch(&[(h, seg)], &mut out);
    }
    engine.close(h)
}

/// Drives one full session over the wire: open → await verdict → submit
/// every point → close → await `Closed`. Returns the epoch swap seq the
/// open pinned plus the authoritative final labels.
fn wire_session(
    client: &mut Client,
    cid: u64,
    tenant: u32,
    traj: &MappedTrajectory,
) -> Result<(u32, Vec<u8>), WireError> {
    let sd = traj.sd_pair().expect("non-empty");
    client
        .send(&Frame::Open {
            session: cid,
            tenant,
            source: sd.source.0,
            dest: sd.dest.0,
            start_time: traj.start_time,
            priority: 0,
        })
        .expect("send open");
    let epoch_seq = loop {
        match client.recv().expect("open verdict") {
            Frame::Opened { session, epoch_seq } if session == cid => break epoch_seq,
            Frame::Rejected { session, error } if session == cid => return Err(error),
            Frame::Label { .. } | Frame::Closed { .. } => {}
            other => panic!("unexpected frame awaiting open verdict: {other:?}"),
        }
    };
    for &seg in &traj.segments {
        client
            .send(&Frame::Submit {
                session: cid,
                segment: seg.0,
            })
            .expect("send submit");
        // Drain streamed labels so outboxes never back up.
        while let Some(frame) = client.try_recv().expect("drain") {
            match frame {
                Frame::Label { .. } => {}
                other => panic!("unexpected frame during submits: {other:?}"),
            }
        }
    }
    client
        .send(&Frame::Close { session: cid })
        .expect("send close");
    loop {
        match client.recv().expect("close result") {
            Frame::Closed { session, labels } if session == cid => return Ok((epoch_seq, labels)),
            Frame::Label { .. } => {}
            other => panic!("unexpected frame awaiting close: {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// **Invariant 16.** A seeded scenario trace replayed through the
    /// loopback network driver yields byte-identical labels to the
    /// in-process sync reference, at 1/2/8 shards.
    #[test]
    fn net_driver_labels_are_byte_identical(
        seed in 0u64..1000,
        scenario in 0usize..6,
    ) {
        let kind = NetworkKind::ChengduGrid;
        static WORLD: OnceLock<(World, Arc<TrainedModel>)> = OnceLock::new();
        let (world, model) = WORLD.get_or_init(|| {
            let world = World::tiny(kind, 0x5E4E_1600);
            let model = Arc::new(world.train(&Rl4oasdConfig::tiny(0x5E4E_1600)));
            (world, model)
        });
        let spec = standard_suite(kind, 48, 0.5).swap_remove(scenario);
        let trace = EventTrace::generate(world, &spec, seed);
        let runner = ScenarioRunner::new(Arc::clone(model), Arc::clone(&world.net));
        let reference = runner.run(&trace, &Driver::Sync { shards: 1 });
        for shards in [1usize, 2, 8] {
            let out = runner.run(
                &trace,
                &Driver::Net {
                    shards,
                    flush: FlushPolicy::immediate(),
                    queue_capacity: 1024,
                },
            );
            prop_assert_eq!(&out.labels, &reference.labels);
            prop_assert_eq!(&out.truth, &trace.truth);
            prop_assert_eq!(out.sessions, trace.sessions as usize);
            prop_assert_eq!(out.events, trace.events);
            prop_assert_eq!(out.rejected, 0);
        }
    }
}

/// Graceful shutdown drains everything: a load-generator fleet runs to
/// completion, every ops endpoint answers, and the post-shutdown report
/// satisfies exact accounting with zero faults.
#[test]
fn load_fleet_accounting_is_exact_and_ops_surface_answers() {
    let fx = fixture();
    let server = loopback_server(fx, 2, Vec::new());
    let ops = server.ops_addr();
    let report = run_load(
        server.wire_addr(),
        LoadSpec {
            connections: 3,
            sessions_per_conn: 8,
            points_per_session: 12,
            tenant: 7,
            num_segments: fx.net.num_segments() as u32,
        },
    );
    assert_eq!(report.sessions_opened, 24);
    assert_eq!(report.sessions_closed, 24);
    assert_eq!(report.labels_streamed, 24 * 12);
    assert_eq!(report.opens_rejected, 0);
    assert_eq!(report.faults, 0);

    let (status, body) = http_get(ops, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "healthz body: {body}");
    let (status, body) = http_get(ops, "/stats");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"id\":7"),
        "auto-registered tenant in stats: {body}"
    );
    let (status, body) = http_get(ops, "/metrics");
    assert_eq!(status, 200);
    assert!(
        body.contains("oasd_serve_connections_total"),
        "metrics body: {body}"
    );

    let ingest = server.shutdown().ingest;
    assert_eq!(ingest.submitted, 24 * 12);
    assert_eq!(
        ingest.submitted,
        ingest.flushed_events + ingest.shed_events + ingest.quarantined_events
    );
    assert_eq!(ingest.quarantined_sessions, 0);
}

/// Shutdown with connections still open closes their sessions into the
/// engine first: nothing leaks, accounting stays exact.
#[test]
fn shutdown_drains_abandoned_sessions() {
    let fx = fixture();
    let server = loopback_server(fx, 2, Vec::new());
    let traj = &fx.trajs[0];
    let mut client = Client::connect(server.wire_addr()).expect("connect");
    let sd = traj.sd_pair().unwrap();
    for cid in 0..4u64 {
        client
            .send(&Frame::Open {
                session: cid,
                tenant: 0,
                source: sd.source.0,
                dest: sd.dest.0,
                start_time: traj.start_time,
                priority: 0,
            })
            .expect("send open");
    }
    let points = traj.segments.len().min(6);
    for &seg in &traj.segments[..points] {
        for cid in 0..4u64 {
            client
                .send(&Frame::Submit {
                    session: cid,
                    segment: seg.0,
                })
                .expect("send submit");
        }
    }
    // Wait until every submitted point has streamed a label back, so the
    // server has definitely consumed all our frames before we abandon
    // the connection without closing anything.
    let mut labels = 0;
    while labels < 4 * points {
        match client.recv().expect("streamed label") {
            Frame::Label { .. } => labels += 1,
            Frame::Opened { .. } => {}
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    let ingest = server.shutdown().ingest;
    assert_eq!(ingest.submitted, 4 * points as u64);
    assert_eq!(ingest.flushed_events, ingest.submitted, "drain lost events");
    assert_eq!(
        ingest.submitted,
        ingest.flushed_events + ingest.shed_events + ingest.quarantined_events
    );
}

/// Per-tenant quotas shed exactly the exhausted tenant's opens; closing
/// a session returns its quota slot.
#[test]
fn tenant_quota_sheds_only_that_tenant() {
    let fx = fixture();
    let server = loopback_server(
        fx,
        1,
        vec![
            TenantSpec {
                id: 1,
                name: "capped".into(),
                max_sessions: 2,
            },
            TenantSpec::unlimited(2, "open"),
        ],
    );
    let traj = &fx.trajs[0];
    let sd = traj.sd_pair().unwrap();
    let mut client = Client::connect(server.wire_addr()).expect("connect");
    let open = |client: &mut Client, cid: u64, tenant: u32| {
        client
            .send(&Frame::Open {
                session: cid,
                tenant,
                source: sd.source.0,
                dest: sd.dest.0,
                start_time: traj.start_time,
                priority: 0,
            })
            .expect("send open");
        match client.recv().expect("verdict") {
            Frame::Opened { session, .. } if session == cid => Ok(()),
            Frame::Rejected { session, error } if session == cid => Err(error),
            other => panic!("unexpected frame: {other:?}"),
        }
    };
    assert_eq!(open(&mut client, 10, 1), Ok(()));
    assert_eq!(open(&mut client, 11, 1), Ok(()));
    // Tenant 1 is at quota; its third open is shed —
    assert_eq!(open(&mut client, 12, 1), Err(WireError::QuotaExhausted));
    // — while tenant 2 admits freely on the same connection,
    assert_eq!(open(&mut client, 20, 2), Ok(()));
    assert_eq!(open(&mut client, 21, 2), Ok(()));
    // and a tenant this server does not host is a typed error.
    assert_eq!(open(&mut client, 30, 3), Err(WireError::UnknownTenant));
    // Reusing a live session id is rejected without touching the quota.
    assert_eq!(open(&mut client, 10, 2), Err(WireError::DuplicateSession));

    // Closing one capped session frees its slot.
    client.send(&Frame::Close { session: 10 }).expect("close");
    loop {
        match client.recv().expect("closed") {
            Frame::Closed { session: 10, .. } => break,
            Frame::Label { .. } => {}
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    assert_eq!(open(&mut client, 12, 1), Ok(()));
    drop(client);
    server.shutdown();
}

/// Scoped model swap: tenant A's new sessions run the new model; tenant
/// B's sessions — and A's already-open sessions — keep the old one,
/// byte for byte.
#[test]
fn tenant_model_swap_isolates_tenants() {
    let fx = fixture();
    // A second model trained on the same data with a different seed; it
    // need not disagree with the first on any one trajectory for the
    // isolation property to be checked exactly.
    let model_b = Arc::new(rl4oasd::train(
        &fx.net,
        &fx.ds,
        &Rl4oasdConfig::tiny(0x5E4E_0002),
    ));
    let traj = fx
        .trajs
        .iter()
        .find(|t| {
            t.segments.len() >= 4
                && reference_labels(&fx.model, &fx.net, t) != reference_labels(&model_b, &fx.net, t)
        })
        .unwrap_or(&fx.trajs[0]);
    let ref_a = reference_labels(&fx.model, &fx.net, traj);
    let ref_b = reference_labels(&model_b, &fx.net, traj);

    let server = loopback_server(fx, 2, Vec::new());
    let mut client = Client::connect(server.wire_addr()).expect("connect");

    // Baseline: both tenants serve model A at swap seq 0.
    let (seq, labels) = wire_session(&mut client, 1, 1, traj).expect("tenant 1 baseline");
    assert_eq!((seq, &labels), (0, &ref_a));
    let (seq, labels) = wire_session(&mut client, 2, 2, traj).expect("tenant 2 baseline");
    assert_eq!((seq, &labels), (0, &ref_a));

    // Open a tenant-1 session, feed half the trajectory, THEN swap
    // tenant 1 to model B mid-flight.
    let sd = traj.sd_pair().unwrap();
    let half = traj.segments.len() / 2;
    client
        .send(&Frame::Open {
            session: 3,
            tenant: 1,
            source: sd.source.0,
            dest: sd.dest.0,
            start_time: traj.start_time,
            priority: 0,
        })
        .expect("open pinned session");
    // Await the open verdict: once `Opened` is back, the open has been
    // enqueued ahead of any later swap in the shard's FIFO, so the
    // session's epoch pin is decided.
    match client.recv().expect("pinned open verdict") {
        Frame::Opened { session: 3, .. } => {}
        other => panic!("unexpected frame: {other:?}"),
    }
    for &seg in &traj.segments[..half] {
        client
            .send(&Frame::Submit {
                session: 3,
                segment: seg.0,
            })
            .expect("submit first half");
    }
    let swap_seq = server
        .swap_tenant_model(1, Arc::clone(&model_b))
        .expect("scoped swap");
    assert_eq!(swap_seq, 1);
    for &seg in &traj.segments[half..] {
        client
            .send(&Frame::Submit {
                session: 3,
                segment: seg.0,
            })
            .expect("submit second half");
        while let Some(frame) = client.try_recv().expect("drain") {
            match frame {
                Frame::Label { .. } | Frame::Opened { .. } => {}
                other => panic!("unexpected frame: {other:?}"),
            }
        }
    }
    client.send(&Frame::Close { session: 3 }).expect("close");
    let pinned_labels = loop {
        match client.recv().expect("closed") {
            Frame::Closed { session: 3, labels } => break labels,
            Frame::Label { .. } | Frame::Opened { .. } => {}
            other => panic!("unexpected frame: {other:?}"),
        }
    };
    // The mid-flight session was pinned to model A at open: the swap
    // must not have relabelled it.
    assert_eq!(pinned_labels, ref_a);

    // After the swap: tenant 1's NEW sessions run model B at seq 1 …
    let (seq, labels) = wire_session(&mut client, 4, 1, traj).expect("tenant 1 after swap");
    assert_eq!((seq, &labels), (1, &ref_b));
    // … and tenant 2 still runs model A at seq 0, byte for byte.
    let (seq, labels) = wire_session(&mut client, 5, 2, traj).expect("tenant 2 after swap");
    assert_eq!((seq, &labels), (0, &ref_a));

    drop(client);
    let ingest = server.shutdown().ingest;
    assert_eq!(
        ingest.submitted,
        ingest.flushed_events + ingest.shed_events + ingest.quarantined_events
    );
}

/// The wire pairing of `SessionEngine::admit` poison semantics: an
/// out-of-range segment quarantines exactly its session with a typed
/// `Fault{PoisonEvent}` frame; sibling sessions on the same connection
/// close clean with identical labels, and accounting charges the
/// quarantined events.
#[test]
fn poison_submit_faults_only_its_session() {
    let fx = fixture();
    let ref_labels = reference_labels(&fx.model, &fx.net, &fx.trajs[0]);
    let server = loopback_server(fx, 1, Vec::new());
    let traj = &fx.trajs[0];
    let sd = traj.sd_pair().unwrap();
    let mut client = Client::connect(server.wire_addr()).expect("connect");
    for cid in [1u64, 2] {
        client
            .send(&Frame::Open {
                session: cid,
                tenant: 0,
                source: sd.source.0,
                dest: sd.dest.0,
                start_time: traj.start_time,
                priority: 0,
            })
            .expect("open");
    }
    // Session 1 sends one good point, then a poison segment far outside
    // the network; session 2 streams the whole trajectory normally.
    client
        .send(&Frame::Submit {
            session: 1,
            segment: traj.segments[0].0,
        })
        .expect("good point");
    client
        .send(&Frame::Submit {
            session: 1,
            segment: u32::MAX,
        })
        .expect("poison point");
    for &seg in &traj.segments {
        client
            .send(&Frame::Submit {
                session: 2,
                segment: seg.0,
            })
            .expect("sibling point");
        while let Some(frame) = client.try_recv().expect("drain") {
            check_poison_phase_frame(frame);
        }
    }
    client.send(&Frame::Close { session: 2 }).expect("close 2");
    let mut fault_seen = false;
    let sibling_labels = loop {
        match client.recv().expect("frames") {
            Frame::Closed { session: 2, labels } => break labels,
            frame => {
                fault_seen |= is_poison_fault(&frame);
                check_poison_phase_frame(frame);
            }
        }
    };
    assert_eq!(
        sibling_labels, ref_labels,
        "sibling session must be untouched by the quarantine"
    );
    // Close the poisoned session: its terminal status is the fault.
    client.send(&Frame::Close { session: 1 }).expect("close 1");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !fault_seen {
        assert!(
            std::time::Instant::now() < deadline,
            "poison fault frame never arrived"
        );
        if let Some(frame) = client.try_recv().expect("fault frame") {
            fault_seen |= is_poison_fault(&frame);
            check_poison_phase_frame(frame);
        }
    }
    drop(client);
    let ingest = server.shutdown().ingest;
    assert_eq!(ingest.quarantined_sessions, 1);
    assert!(ingest.quarantined_events >= 1, "poison event is charged");
    assert_eq!(
        ingest.submitted,
        ingest.flushed_events + ingest.shed_events + ingest.quarantined_events
    );
}

fn is_poison_fault(frame: &Frame) -> bool {
    matches!(
        frame,
        Frame::Fault { session: 1, fault } if fault_from_code(*fault) == Some(SessionFault::PoisonEvent)
    )
}

fn check_poison_phase_frame(frame: Frame) {
    match frame {
        Frame::Opened { .. } | Frame::Label { .. } | Frame::Closed { .. } => {}
        Frame::Fault { session, fault } => {
            assert_eq!(session, 1, "only the poisoned session may fault");
            assert_eq!(fault_from_code(fault), Some(SessionFault::PoisonEvent));
        }
        other => panic!("unexpected frame during poison run: {other:?}"),
    }
}

/// Submits and closes for never-opened sessions, and out-of-range SD
/// pairs in opens, are typed rejections — the connection (and server)
/// keep working.
#[test]
fn unknown_sessions_and_bad_opens_are_typed_rejections() {
    let fx = fixture();
    let server = loopback_server(fx, 1, Vec::new());
    let traj = &fx.trajs[0];
    let mut client = Client::connect(server.wire_addr()).expect("connect");
    client
        .send(&Frame::Submit {
            session: 99,
            segment: 0,
        })
        .expect("stray submit");
    assert_eq!(
        client.recv().expect("verdict"),
        Frame::Rejected {
            session: 99,
            error: WireError::UnknownSession
        }
    );
    client
        .send(&Frame::Close { session: 99 })
        .expect("stray close");
    assert_eq!(
        client.recv().expect("verdict"),
        Frame::Rejected {
            session: 99,
            error: WireError::UnknownSession
        }
    );
    // An SD endpoint outside the network must be screened at the door,
    // not crash a shard worker at observe time.
    client
        .send(&Frame::Open {
            session: 1,
            tenant: 0,
            source: u32::MAX,
            dest: 0,
            start_time: 0.0,
            priority: 0,
        })
        .expect("bad open");
    assert_eq!(
        client.recv().expect("verdict"),
        Frame::Rejected {
            session: 1,
            error: WireError::Malformed
        }
    );
    // The connection survived all three rejections.
    let (_, labels) = wire_session(&mut client, 7, 0, traj).expect("session after rejections");
    assert_eq!(labels, reference_labels(&fx.model, &fx.net, traj));
    drop(client);
    server.shutdown();
}

/// Cross-protocol garbage on the wire port: a typed `Malformed`
/// rejection, the connection closes, and the listener keeps accepting.
#[test]
fn wire_listener_survives_malformed_connections() {
    let fx = fixture();
    let server = loopback_server(fx, 1, Vec::new());

    // 1. An HTTP request aimed at the wire port fails the preamble.
    let mut stream = TcpStream::connect(server.wire_addr()).expect("connect");
    stream
        .write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("send http garbage");
    assert_eq!(
        read_rejection(&mut stream),
        Some(WireError::Malformed),
        "preamble mismatch must answer a typed rejection"
    );
    drop(stream);

    // 2. A correct preamble followed by an oversized length prefix.
    let mut stream = TcpStream::connect(server.wire_addr()).expect("connect");
    stream.write_all(b"OSD1").expect("preamble");
    stream
        .write_all(&u32::MAX.to_le_bytes())
        .expect("hostile length prefix");
    assert_eq!(read_rejection(&mut stream), Some(WireError::Malformed));
    drop(stream);

    // 3. A correct preamble followed by an unknown opcode.
    let mut stream = TcpStream::connect(server.wire_addr()).expect("connect");
    stream.write_all(b"OSD1").expect("preamble");
    stream.write_all(&1u32.to_le_bytes()).expect("prefix");
    stream.write_all(&[0x55]).expect("bogus opcode");
    assert_eq!(read_rejection(&mut stream), Some(WireError::Malformed));
    drop(stream);

    // 4. A client sending a response opcode is off-protocol.
    let mut stream = TcpStream::connect(server.wire_addr()).expect("connect");
    stream.write_all(b"OSD1").expect("preamble");
    stream
        .write_all(&frame_bytes(&Frame::Bye))
        .expect("response opcode from client");
    assert_eq!(read_rejection(&mut stream), Some(WireError::Malformed));
    drop(stream);

    // The listener is not wedged: a well-formed session still works.
    let traj = &fx.trajs[0];
    let mut client = Client::connect(server.wire_addr()).expect("connect after garbage");
    let (_, labels) = wire_session(&mut client, 1, 0, traj).expect("clean session");
    assert_eq!(labels, reference_labels(&fx.model, &fx.net, traj));
    drop(client);
    let ingest = server.shutdown().ingest;
    assert_eq!(
        ingest.submitted,
        ingest.flushed_events + ingest.shed_events + ingest.quarantined_events
    );
}

/// Garbage HTTP on the ops port: 400/404/405, never a panic or a wedged
/// listener.
#[test]
fn ops_listener_survives_malformed_requests() {
    let fx = fixture();
    let server = loopback_server(fx, 1, Vec::new());
    let ops = server.ops_addr();

    let (status, _) = http_raw(ops, b"\x00\x01\x02\x03 utter garbage\r\n\r\n");
    assert_eq!(status, 400);
    let (status, _) = http_raw(ops, b"GARBAGE\r\n\r\n");
    assert_eq!(status, 400);
    let (status, _) = http_raw(ops, b"GET /nope HTTP/1.1\r\n\r\n");
    assert_eq!(status, 404);
    let (status, _) = http_raw(ops, b"DELETE /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(status, 405);
    let (status, _) = http_raw(ops, b"POST /swap?model=oops HTTP/1.1\r\n\r\n");
    assert_eq!(status, 400);
    let (status, _) = http_raw(ops, b"POST /swap?model=42 HTTP/1.1\r\n\r\n");
    assert_eq!(status, 404, "unknown shelf index is a 404, not a crash");

    // Still serving after all of it.
    let (status, body) = http_get(ops, "/healthz");
    assert_eq!((status, body.contains("\"ok\"")), (200, true));
    server.shutdown();
}

/// The ops `/swap` trigger swaps a shelf model for real: subsequent wire
/// sessions label with the new model.
#[test]
fn ops_swap_trigger_swaps_shelf_model() {
    let fx = fixture();
    let model_b = Arc::new(rl4oasd::train(
        &fx.net,
        &fx.ds,
        &Rl4oasdConfig::tiny(0x5E4E_0003),
    ));
    let traj = &fx.trajs[0];
    let ref_b = reference_labels(&model_b, &fx.net, traj);
    let server = loopback_server(fx, 1, Vec::new());
    let idx = server.add_shelf_model(Arc::clone(&model_b));
    let (status, body) = http_raw(
        server.ops_addr(),
        format!("POST /swap?model={idx} HTTP/1.1\r\n\r\n").as_bytes(),
    );
    assert_eq!(status, 200, "swap trigger failed: {body}");
    assert!(body.contains("\"swapped\":true"), "swap body: {body}");
    let mut client = Client::connect(server.wire_addr()).expect("connect");
    let (seq, labels) = wire_session(&mut client, 1, 0, traj).expect("post-swap session");
    assert_eq!(seq, 1, "swap seq must reflect the ops-triggered install");
    assert_eq!(
        labels, ref_b,
        "new sessions must label with the shelf model"
    );
    drop(client);
    server.shutdown();
}

// --- tiny HTTP helpers -------------------------------------------------

fn http_raw(addr: std::net::SocketAddr, request: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect ops");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream.write_all(request).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    http_raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

/// Reads frames from a raw socket until `Rejected` (returning its error)
/// or EOF (`None`).
fn read_rejection(stream: &mut TcpStream) -> Option<WireError> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        // Reassemble with the public decoder so the test also exercises
        // the client-facing path.
        let mut offset = 0;
        while buf.len() >= offset + 4 {
            let n = u32::from_le_bytes(buf[offset..offset + 4].try_into().unwrap()) as usize;
            if buf.len() < offset + 4 + n {
                break;
            }
            if let Ok(Frame::Rejected { error, .. }) =
                decode_frame(&buf[offset + 4..offset + 4 + n])
            {
                return Some(error);
            }
            offset += 4 + n;
        }
        buf.drain(..offset);
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(k) => buf.extend_from_slice(&chunk[..k]),
            Err(_) => return None,
        }
    }
}
