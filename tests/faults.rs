//! Fault-tolerance invariants of the supervised serving stack
//! (ARCHITECTURE.md invariant 15).
//!
//! The contract under test: for **any** seeded [`FaultPlan`] replayed at
//! 1, 2 and 8 shards,
//!
//! * sessions untouched by a fault produce final labels **byte-identical**
//!   to the fault-free replay of the same trace;
//! * faulted sessions terminate with an **explicit** [`SessionFault`] —
//!   a close ticket never hangs and never panics the caller;
//! * accounting is exact: every accepted event is flushed, shed or
//!   charged to a quarantined session — nothing vanishes silently.
//!
//! Run in CI's release job too, so the catch_unwind/restart path is
//! exercised with optimisations on.

mod common;

use proptest::prelude::*;
use rl4oasd_repro::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Trained scenario fixture shared across every test in this file.
struct FaultFixture {
    world: World,
    model: Arc<TrainedModel>,
}

fn fixture() -> &'static FaultFixture {
    static FIXTURE: OnceLock<FaultFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        silence_injected_panic_output();
        let kind = NetworkKind::ChengduGrid;
        let world = World::tiny(kind, 0xFA_0001);
        let model = Arc::new(world.train(&Rl4oasdConfig::tiny(0xFA_0001)));
        FaultFixture { world, model }
    })
}

fn runner(fx: &FaultFixture) -> ScenarioRunner {
    ScenarioRunner::new(Arc::clone(&fx.model), Arc::clone(&fx.world.net))
}

/// A short fault-drill workload: no regimes, enough arrivals that every
/// shard count sees multi-session ticks.
fn drill_trace(fx: &FaultFixture, seed: u64, ticks: u32) -> EventTrace {
    let spec = ScenarioSpec {
        name: "fault_drill".into(),
        network: NetworkKind::ChengduGrid,
        ticks,
        arrivals_per_tick: 0.8,
        regimes: Vec::new(),
    };
    EventTrace::generate(&fx.world, &spec, seed)
}

/// Fault-free reference labels for the same trace through the same
/// ingest shape (shards/flush/queue) under lossless retry.
fn baseline(
    fx: &FaultFixture,
    trace: &EventTrace,
    shards: usize,
    flush: FlushPolicy,
) -> RunOutcome {
    runner(fx).run(
        trace,
        &Driver::Ingest {
            shards,
            flush,
            queue_capacity: 256,
            backpressure: Backpressure::Retry,
        },
    )
}

/// Asserts invariant 15 on one drill: byte-identity for unaffected
/// sessions, explicit faults for the rest, exact accounting.
fn assert_fault_isolation(out: &FaultOutcome, reference: &RunOutcome) {
    assert_eq!(out.labels.len(), reference.labels.len());
    for (id, fault) in out.faults.iter().enumerate() {
        match fault {
            None => assert_eq!(
                out.labels[id], reference.labels[id],
                "unaffected session {id} diverged from the fault-free run"
            ),
            Some(_) => assert!(
                out.labels[id].is_empty(),
                "faulted session {id} must not also deliver final labels"
            ),
        }
    }
    assert!(
        out.accounting_exact(),
        "accounting leak: submitted={} flushed={} shed={} quarantined={}",
        out.ingest.submitted,
        out.ingest.flushed_events,
        out.ingest.shed_events,
        out.ingest.quarantined_events
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Invariant 15, property form: any seeded `FaultPlan` (mixed poison /
    /// panic / stall / slowdown faults) at 1, 2 and 8 shards isolates its
    /// faults exactly. No fault class may leak into another session's
    /// labels, hang a close ticket, or break the event ledger.
    #[test]
    fn seeded_fault_plans_isolate_faults(seed in 0u64..10_000) {
        let fx = fixture();
        let trace = drill_trace(fx, seed ^ 0xD811, 32);
        let plan = FaultPlan::seeded(seed, trace.ticks.len() as u32);
        let flush = FlushPolicy::new(4, Duration::from_micros(200));
        for shards in [1usize, 2, 8] {
            let reference = baseline(fx, &trace, shards, flush);
            let out = runner(fx).run_supervised(&trace, shards, flush, 256, &plan);
            assert_fault_isolation(&out, &reference);
            // Only the plan's poison victims may lose labels: injected
            // panics land at flush boundaries, so the supervisor must
            // salvage every non-poisoned session.
            prop_assert_eq!(out.labels_lost(), out.poisons_injected);
            for fault in out.faults.iter().flatten() {
                prop_assert_eq!(*fault, SessionFault::PoisonEvent);
            }
            // Panic faults broadcast to every shard; each restarts once.
            let panics = plan
                .faults
                .iter()
                .filter(|f| matches!(f, Fault::WorkerPanic { .. }))
                .count() as u64;
            prop_assert_eq!(out.worker_restarts, panics * shards as u64);
            prop_assert_eq!(out.mttr_ticks.is_some(), panics > 0);
        }
    }
}

/// A worker panic with no poison in flight is a **zero-loss** event: the
/// supervisor rebuilds the shard engine and salvages every session with
/// byte-identical labels, and the drill reports a finite MTTR.
#[test]
fn worker_panic_salvages_every_session_byte_identically() {
    let fx = fixture();
    let trace = drill_trace(fx, 0xC4A5, 40);
    let plan = FaultPlan {
        faults: vec![Fault::WorkerPanic { at_tick: 5 }],
    };
    let flush = FlushPolicy::new(4, Duration::from_micros(200));
    for shards in [1usize, 2, 8] {
        let reference = baseline(fx, &trace, shards, flush);
        let out = runner(fx).run_supervised(&trace, shards, flush, 256, &plan);
        assert_fault_isolation(&out, &reference);
        assert_eq!(out.labels_lost(), 0, "a flush-boundary panic loses nothing");
        assert_eq!(out.labels, reference.labels);
        assert_eq!(out.worker_restarts, shards as u64);
        assert!(out.mttr_ticks.is_some(), "recovery time must be measured");
    }
}

/// Poison events quarantine exactly their victims with
/// [`SessionFault::PoisonEvent`]; every other session is untouched.
#[test]
fn poison_quarantines_only_its_victims() {
    let fx = fixture();
    let trace = drill_trace(fx, 0x9015, 40);
    let plan = FaultPlan {
        faults: vec![Fault::Poison {
            at_tick: 4,
            victims: 2,
        }],
    };
    let flush = FlushPolicy::immediate();
    let reference = baseline(fx, &trace, 2, flush);
    let out = runner(fx).run_supervised(&trace, 2, flush, 256, &plan);
    assert_fault_isolation(&out, &reference);
    assert_eq!(out.poisons_injected, 2);
    assert_eq!(out.labels_lost(), 2);
    assert_eq!(out.faulted_sessions().len(), 2);
    for id in out.faulted_sessions() {
        assert_eq!(out.faults[id as usize], Some(SessionFault::PoisonEvent));
    }
    assert_eq!(out.worker_restarts, 0, "poison must not restart a worker");
    assert!(
        out.ingest.quarantined_events >= 2,
        "poison events are charged"
    );
}

/// Queue stalls and slow shards are pure scheduling faults: with lossless
/// producer backoff the labels still match the fault-free run exactly.
#[test]
fn stalls_and_slowdowns_lose_nothing() {
    let fx = fixture();
    let trace = drill_trace(fx, 0x57A7, 32);
    let plan = FaultPlan {
        faults: vec![
            Fault::QueueStall {
                at_tick: 3,
                millis: 10,
            },
            Fault::SlowShard {
                from_tick: 8,
                every: 4,
                micros: 300,
            },
        ],
    };
    let flush = FlushPolicy::new(4, Duration::from_micros(200));
    let reference = baseline(fx, &trace, 2, flush);
    // A tiny queue so the stall genuinely backs up the producer.
    let out = runner(fx).run_supervised(&trace, 2, flush, 4, &plan);
    assert_fault_isolation(&out, &reference);
    assert_eq!(out.labels_lost(), 0);
    assert_eq!(out.labels, reference.labels);
    assert_eq!(out.worker_restarts, 0);
}

/// The deadline policy bounds producer latency end-to-end: while a shard
/// worker is stalled and its capacity-1 queue is full, `submit_with_deadline`
/// returns [`SubmitError::DeadlineExceeded`] instead of blocking, and the
/// give-up is counted.
#[test]
fn deadline_bounds_submit_latency_under_stall() {
    use std::time::Instant;
    let fx = fixture();
    let engine = rl4oasd::IngestEngine::supervised(
        Arc::clone(&fx.model),
        Arc::clone(&fx.world.net),
        1,
        IngestConfig {
            flush: FlushPolicy::immediate(),
            queue_capacity: 1,
            ..Default::default()
        },
        None,
    );
    let handle = engine.handle();
    let trace = drill_trace(fx, 0xDEAD, 8);
    let &(_, sd, t0) = trace
        .ticks
        .iter()
        .find_map(|t| t.opens.first())
        .expect("trace opens at least one session");
    let (session, _sub) = handle.open(sd, t0).expect("open accepted");
    let segment = fx.world.net.segments()[0].id;
    // Stall the worker long enough to wedge the capacity-1 queue, then
    // demand a deadline that must expire while it sleeps.
    handle
        .control(|_: &mut StreamEngine| std::thread::sleep(Duration::from_millis(150)))
        .expect("stall accepted");
    let mut expired = 0u64;
    for _ in 0..64 {
        match handle.submit_with_deadline(session, segment, Instant::now()) {
            Err(SubmitError::DeadlineExceeded) => expired += 1,
            Ok(()) | Err(SubmitError::QueueFull) => {}
            Err(e) => panic!("unexpected submit error: {e:?}"),
        }
    }
    assert!(
        expired > 0,
        "a wedged queue must expire at least one deadline"
    );
    assert_eq!(handle.deadline_exceeded_events(), expired);
    let report = engine.shutdown();
    assert_eq!(report.ingest.deadline_exceeded, expired);
}

/// Handle-edge faults return errors instead of wedging a worker: closing
/// twice, submitting after close, and racing shutdown against an
/// in-flight close all resolve explicitly (integration-level mirror of
/// the unit tests in `traj::ingest`).
#[test]
fn handle_edge_faults_resolve_explicitly() {
    let fx = fixture();
    let engine = rl4oasd::IngestEngine::supervised(
        Arc::clone(&fx.model),
        Arc::clone(&fx.world.net),
        2,
        IngestConfig::default(),
        None,
    );
    let handle = engine.handle();
    let trace = drill_trace(fx, 0xE55E, 8);
    let &(_, sd, t0) = trace
        .ticks
        .iter()
        .find_map(|t| t.opens.first())
        .expect("trace opens at least one session");
    let segment = fx.world.net.segments()[0].id;

    let (session, _sub) = handle.open(sd, t0).expect("open accepted");
    handle
        .submit_blocking(session, segment)
        .expect("submit accepted");
    let first = handle.close(session).expect("first close accepted");
    assert_eq!(first.wait().expect("healthy session").len(), 1);
    // Double close: an explicit fault on the ticket, not a worker panic.
    assert_eq!(
        handle.close(session).expect("command accepted").wait(),
        Err(SessionFault::UnknownSession)
    );
    // A stray submit for the closed session is accepted, then shed.
    handle
        .submit_blocking(session, segment)
        .expect("stray submit accepted");
    let report = engine.shutdown();
    assert_eq!(report.ingest.submitted, 2);
    assert_eq!(report.ingest.flushed_events, 1);
    assert_eq!(report.ingest.shed_events, 1);
}
