//! Property tests for the vectorized kernel layer (`nn::ops::kernels`)
//! and the packed-weight representations (`nn::pack`).
//!
//! The serving stack's byte-identity guarantees (batched-vs-scalar,
//! shard-invariance, ingest-vs-sync) all reduce to three kernel-level
//! invariants, each verified here over adversarial shapes — rows/cols/
//! batch that are not multiples of the 8-lane width, 1×1 matrices, empty
//! batches:
//!
//! 1. packed weights produce **exactly** the bits of the unpacked
//!    row-major path (padding is never read);
//! 2. `matvec_batch` is bit-identical to per-lane `matvec` under the
//!    shared fixed reduction order;
//! 3. `matvec` / `matvec_t_acc` remain numerically adjoint
//!    (`⟨Wx, g⟩ ≈ ⟨x, Wᵀg⟩`), which is what keeps training gradients
//!    honest on top of the vectorized forward kernels.

use nn::ops::{self, kernels};
use nn::pack::{PackedGru, PackedLinear, PackedLstm, PackedWeights};
use nn::rnn::{GruScratch, LstmScratch, LstmState};
use nn::{GruCell, Linear, LstmCell};
use proptest::prelude::*;

/// Deterministic value stream from a seed (xorshift): wide enough to
/// exercise cancellation and rounding, always finite.
fn values(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) * 8.0 - 4.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Packed (row-padded) weights are bit-identical to the dense layout
    /// for scalar and batched products, across awkward shapes including
    /// 1×1 and empty batch.
    #[test]
    fn packed_matvec_is_bit_identical_to_unpacked(
        rows in 1usize..20,
        cols in 1usize..20,
        batch in 0usize..6,
        seed in 0u64..1_000_000,
    ) {
        let w = values(rows * cols, seed);
        let xs = values(batch.max(1) * cols, seed ^ 0xABCD);
        let packed = PackedWeights::pack(&w, rows, cols);
        prop_assert_eq!(packed.rows(), rows);
        prop_assert_eq!(packed.cols(), cols);
        prop_assert_eq!(packed.stride() % kernels::LANES, 0);

        // scalar
        let mut y0 = vec![0.0f32; rows];
        let mut y1 = vec![0.0f32; rows];
        ops::matvec(&w, rows, cols, &xs[..cols], &mut y0);
        packed.matvec(&xs[..cols], &mut y1);
        prop_assert_eq!(&y0, &y1);

        // batched (including batch == 0)
        let mut ys0 = vec![0.0f32; batch * rows];
        let mut ys1 = vec![0.0f32; batch * rows];
        ops::matvec_batch(&w, rows, cols, &xs[..batch * cols], batch, &mut ys0);
        packed.matvec_batch(&xs[..batch * cols], batch, &mut ys1);
        prop_assert_eq!(&ys0, &ys1);
    }

    /// `matvec_batch` (the engine's batched tick kernel) stays bit-identical
    /// to per-lane `matvec` under the shared reduction order — the kernel
    /// form of the batched-vs-scalar serving invariant.
    #[test]
    fn matvec_batch_is_bit_identical_per_lane(
        rows in 1usize..24,
        cols in 1usize..40,
        batch in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        let w = values(rows * cols, seed);
        let xs = values(batch * cols, seed ^ 0x5EED);
        let mut ys = vec![0.0f32; batch * rows];
        ops::matvec_batch(&w, rows, cols, &xs, batch, &mut ys);
        for b in 0..batch {
            let mut y = vec![0.0f32; rows];
            ops::matvec(&w, rows, cols, &xs[b * cols..(b + 1) * cols], &mut y);
            prop_assert!(ys[b * rows..(b + 1) * rows] == y[..], "lane {} differs", b);
        }
    }

    /// `⟨Wx, g⟩ ≈ ⟨x, Wᵀg⟩`: the forward kernel and the backward
    /// accumulation stay adjoint to f32 tolerance after vectorization.
    #[test]
    fn matvec_and_matvec_t_acc_are_adjoint(
        rows in 1usize..16,
        cols in 1usize..16,
        seed in 0u64..1_000_000,
    ) {
        let w = values(rows * cols, seed);
        let x = values(cols, seed ^ 0xF00);
        let g = values(rows, seed ^ 0xBA5);
        let mut wx = vec![0.0f32; rows];
        ops::matvec(&w, rows, cols, &x, &mut wx);
        let lhs: f64 = wx.iter().zip(&g).map(|(&a, &b)| a as f64 * b as f64).sum();
        let mut wtg = vec![0.0f32; cols];
        ops::matvec_t_acc(&w, rows, cols, &g, &mut wtg);
        let rhs: f64 = x.iter().zip(&wtg).map(|(&a, &b)| a as f64 * b as f64).sum();
        let scale = 1.0 + lhs.abs().max(rhs.abs());
        prop_assert!(
            (lhs - rhs).abs() / scale < 1e-4,
            "adjointness broken: {} vs {}", lhs, rhs
        );
    }

    /// The packed LSTM/GRU/Linear inference steps advance sessions with
    /// exactly the bits of the raw-cell forward passes, for any shape.
    #[test]
    fn packed_cells_match_raw_forward_bitwise(
        input in 1usize..12,
        hidden in 1usize..18,
        steps in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = nn::init::seeded_rng(seed);
        let x = values(input, seed ^ 0x11);

        let lstm = LstmCell::new(input, hidden, &mut rng);
        let packed = PackedLstm::of(&lstm);
        let mut expect = LstmState::zeros(hidden);
        let mut got = LstmState::zeros(hidden);
        let mut scratch = LstmScratch::default();
        for step in 0..steps {
            expect = lstm.forward(&x, &expect).0;
            packed.infer_step(&x, &mut got, &mut scratch);
            prop_assert!(got == expect, "lstm step {} differs", step);
        }

        let gru = GruCell::new(input, hidden, &mut rng);
        let pgru = PackedGru::of(&gru);
        let mut h = vec![0.0f32; hidden];
        let mut gscratch = GruScratch::default();
        for step in 0..steps {
            let (next, _) = gru.forward(&x, &h);
            let mut out = Vec::new();
            pgru.infer_step(&x, &h, &mut out, &mut gscratch);
            prop_assert!(out == next, "gru step {} differs", step);
            h = next;
        }

        let linear = Linear::new(input, hidden, &mut rng);
        let plin = PackedLinear::of(&linear);
        let mut y0 = vec![0.0f32; hidden];
        let mut y1 = vec![0.0f32; hidden];
        linear.infer(&x, &mut y0);
        plin.infer(&x, &mut y1);
        prop_assert_eq!(&y0, &y1);
    }
}

#[test]
fn empty_batch_and_tiny_shapes_are_safe() {
    let p = PackedWeights::pack(&[2.5], 1, 1);
    let mut y = vec![0.0f32];
    p.matvec(&[4.0], &mut y);
    assert_eq!(y[0], 10.0);
    let mut ys: Vec<f32> = vec![];
    p.matvec_batch(&[], 0, &mut ys);
    assert!(ys.is_empty());

    // zero-row matrix
    let p0 = PackedWeights::pack(&[], 0, 3);
    let mut none: Vec<f32> = vec![];
    p0.matvec(&[1.0, 2.0, 3.0], &mut none);
    assert!(none.is_empty());
}

/// The kernel dispatch (SSE2 on x86_64) must equal the portable
/// order-defining implementation bit-for-bit at every alignment and tail
/// length — this is the test that pins the documented reduction order to
/// what actually executes.
#[test]
fn dispatched_dot_equals_portable_definition() {
    for n in 0..200 {
        let a = values(n, n as u64 * 7 + 1);
        let b = values(n, n as u64 * 13 + 5);
        assert_eq!(kernels::dot(&a, &b), kernels::dot_portable(&a, &b), "n={n}");
    }
}
