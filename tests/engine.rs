//! Integration tests of the fleet-scale session engine: interleaving many
//! concurrent trajectories through `StreamEngine` (RL4OASD) or a
//! `SessionMux` (every baseline) must yield byte-identical labels to
//! driving each trajectory alone through the per-trajectory
//! `OnlineDetector` path — and the engine must sustain the scale the
//! serving layer is built for (thousands of sessions, tens of thousands of
//! interleaved observes, batched nn ticks).

use proptest::prelude::*;
use rl4oasd_repro::prelude::*;
use std::sync::{Arc, OnceLock};

mod common;
use common::{interleaved, trained_fixture, CityKind, EngineFixture};

/// One shared trained fixture for every test in this file (training is the
/// expensive part; the properties only exercise serving).
fn fixture() -> &'static EngineFixture {
    static FIXTURE: OnceLock<EngineFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| trained_fixture(CityKind::ChengduGrid, 0xF1EE7))
}

/// Labels every trajectory alone through the per-trajectory path.
fn sequential<D: OnlineDetector>(mut det: D, trajs: &[&MappedTrajectory]) -> Vec<Vec<u8>> {
    trajs.iter().map(|t| det.label_trajectory(t)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// RL4OASD: interleaving N trajectories through the StreamEngine is
    /// byte-identical to the sequential per-trajectory path, whatever the
    /// interleaving schedule.
    #[test]
    fn stream_engine_matches_sequential(seed in 0u64..10_000, n in 2usize..24) {
        let fx = fixture();
        let trajs: Vec<&MappedTrajectory> = fx.trajs.iter().take(n).collect();
        let expected = sequential(Rl4oasdDetector::new(&fx.model, &fx.net), &trajs);
        let mut engine = StreamEngine::new(Arc::clone(&fx.model), Arc::clone(&fx.net));
        let got = interleaved(&mut engine, &trajs, seed);
        prop_assert_eq!(got, expected);
    }

    /// Every baseline behind the generic session wrapper: interleaving is
    /// byte-identical to the sequential path.
    #[test]
    fn baseline_engines_match_sequential(seed in 0u64..10_000, n in 2usize..16) {
        let fx = fixture();
        let trajs: Vec<&MappedTrajectory> = fx.trajs.iter().take(n).collect();

        // IBOAT
        let expected = sequential(
            Thresholded::new(Iboat::new(Arc::clone(&fx.stats), 0.05), 0.5),
            &trajs,
        );
        let mut engine = baselines::iboat_engine(Arc::clone(&fx.stats), 0.05, 0.5);
        prop_assert_eq!(interleaved(&mut engine, &trajs, seed), expected);

        // DBTOD
        let weights = [1.0, 0.5, 0.25, 0.5, 1.0, 0.75];
        let expected = sequential(
            {
                let mut d = Dbtod::new(&fx.net, Arc::clone(&fx.stats));
                d.weights = weights;
                Thresholded::new(d, 2.0)
            },
            &trajs,
        );
        let mut engine = baselines::dbtod_engine(&fx.net, Arc::clone(&fx.stats), weights, 2.0);
        prop_assert_eq!(interleaved(&mut engine, &trajs, seed), expected);

        // CTSS
        let expected = sequential(
            Thresholded::new(Ctss::new(&fx.net, Arc::clone(&fx.stats)), 150.0),
            &trajs,
        );
        let mut engine = baselines::ctss_engine(&fx.net, Arc::clone(&fx.stats), 150.0);
        prop_assert_eq!(interleaved(&mut engine, &trajs, seed), expected);
    }
}

/// The acceptance-scale run: ≥ 1,000 concurrent sessions, ≥ 10,000
/// interleaved observe calls in one process, labels identical to the
/// per-trajectory path, batched nn step used for every multi-session tick.
#[test]
fn stream_engine_sustains_fleet_scale() {
    let fx = fixture();
    // 1,000+ sessions cycling over the corpus.
    let sessions: Vec<&MappedTrajectory> = fx
        .trajs
        .iter()
        .cycle()
        .take(2_000.max(fx.trajs.len()))
        .collect();
    let expected = sequential(Rl4oasdDetector::new(&fx.model, &fx.net), &sessions);

    let mut engine = StreamEngine::new(Arc::clone(&fx.model), Arc::clone(&fx.net));
    let handles: Vec<_> = sessions
        .iter()
        .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
        .collect();
    assert!(engine.active_sessions() >= 1_000);
    assert!(
        sessions.iter().map(|t| t.len() as u64).sum::<u64>() >= 10_000,
        "fixture too small for the acceptance scale"
    );

    // Tick-synchronous: all still-active sessions advance each tick.
    let max_len = sessions.iter().map(|t| t.len()).max().unwrap();
    let mut events = Vec::new();
    let mut out = Vec::new();
    for tick in 0..max_len {
        events.clear();
        for (k, t) in sessions.iter().enumerate() {
            if tick < t.len() {
                events.push((handles[k], t.segments[tick]));
            }
        }
        engine.observe_batch(&events, &mut out);
    }
    let got: Vec<Vec<u8>> = handles.iter().map(|&h| engine.close(h)).collect();
    assert_eq!(got, expected, "fleet-scale interleaving changed labels");

    let stats = engine.stats();
    assert!(
        stats.observe_events >= 10_000,
        "only {} observe events",
        stats.observe_events
    );
    // Every tick here advances >1 session, so every event must have gone
    // through the batched nn step.
    assert_eq!(
        stats.scalar_events, 0,
        "batched nn step not used for a multi-session tick"
    );
    assert_eq!(stats.batched_events, stats.observe_events);
    assert!(stats.batched_rounds > 0);
    assert_eq!(stats.sessions_opened, handles.len() as u64);
    assert_eq!(stats.sessions_closed, handles.len() as u64);
}
