//! Shared drivers for the session-engine integration tests: the same
//! interleaving schedule must be replayable against different engines
//! (single, muxed, sharded) so cross-file equivalence claims compare the
//! exact same workload.

use rl4oasd_repro::prelude::*;

/// Drives the trajectories through an engine with a deterministic but
/// irregular interleaving: each tick advances a seed-dependent subset of
/// the still-active sessions via `observe_batch` (so ticks mix batch sizes
/// 1, 2, ... n), then closes everything. Identical schedule for identical
/// seeds, so two engines fed the same seed see the same workload.
pub fn interleaved<E: SessionEngine + ?Sized>(
    engine: &mut E,
    trajs: &[&MappedTrajectory],
    schedule_seed: u64,
) -> Vec<Vec<u8>> {
    let handles: Vec<_> = trajs
        .iter()
        .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
        .collect();
    let mut pos = vec![0usize; trajs.len()];
    let mut rng = schedule_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        // xorshift64* — self-contained schedule randomness
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut events = Vec::new();
    let mut out = Vec::new();
    loop {
        events.clear();
        for (k, t) in trajs.iter().enumerate() {
            // ~2/3 of active sessions advance each tick; stragglers catch
            // up on later ticks, so ticks interleave trips at different
            // positions.
            if pos[k] < t.len() && next() % 3 != 0 {
                events.push((handles[k], t.segments[pos[k]]));
                pos[k] += 1;
            }
        }
        if events.is_empty() {
            if pos.iter().zip(trajs).all(|(&p, t)| p == t.len()) {
                break;
            }
            continue; // unlucky tick: nobody advanced
        }
        engine.observe_batch(&events, &mut out);
        assert_eq!(out.len(), events.len());
    }
    handles.into_iter().map(|h| engine.close(h)).collect()
}
