//! Shared drivers and fixtures for the session-engine integration tests:
//! the same interleaving schedule must be replayable against different
//! engines (single, muxed, sharded) so cross-file equivalence claims
//! compare the exact same workload — and the same fixture recipe must be
//! buildable on either city generator so every suite can run
//! cross-network.

// Each integration-test binary compiles this module independently and
// uses a different subset of it; what one binary leaves unused another
// depends on.
#![allow(dead_code)]

use rl4oasd_repro::prelude::*;
use std::sync::Arc;

/// Which synthetic city a fixture is built on. Test suites default to the
/// Chengdu-like grid; the scenario suite sweeps both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CityKind {
    /// The paper's Chengdu-like imperfect grid.
    ChengduGrid,
    /// The Porto-like ring-and-spoke radial city.
    PortoRadial,
}

/// Builds the tiny test-scale network of the given kind.
pub fn build_city(kind: CityKind, seed: u64) -> RoadNetwork {
    match kind {
        CityKind::ChengduGrid => CityBuilder::new(CityConfig::tiny(seed)).build(),
        CityKind::PortoRadial => RadialCityBuilder::new(RadialCityConfig::tiny(seed)).build(),
    }
}

/// A trained serving fixture: network, model and a pool of non-empty
/// trajectories — the recipe every engine-equivalence suite shares,
/// parameterised by the network handle so any suite can run on either
/// city.
pub struct EngineFixture {
    pub net: Arc<RoadNetwork>,
    pub model: Arc<TrainedModel>,
    pub stats: Arc<RouteStats>,
    /// The training corpus (kept so suites can train variant models or
    /// fit baseline statistics on the exact same data).
    pub ds: Dataset,
    pub trajs: Vec<MappedTrajectory>,
}

/// Builds the standard trained fixture on `kind` with the given seed:
/// 4 SD pairs × 50–70 trajectories at 15% anomaly ratio, trained with
/// `Rl4oasdConfig::tiny(seed)`.
pub fn trained_fixture(kind: CityKind, seed: u64) -> EngineFixture {
    let net = build_city(kind, seed);
    let cfg = TrafficConfig {
        num_sd_pairs: 4,
        trajs_per_pair: (50, 70),
        anomaly_ratio: 0.15,
        ..TrafficConfig::tiny(seed)
    };
    let ds = Dataset::from_generated(&TrafficSimulator::new(&net, cfg).generate());
    let model = Arc::new(rl4oasd::train(&net, &ds, &Rl4oasdConfig::tiny(seed)));
    let stats = Arc::new(RouteStats::fit(&ds));
    let trajs: Vec<MappedTrajectory> = ds
        .trajectories
        .iter()
        .filter(|t| !t.is_empty())
        .cloned()
        .collect();
    EngineFixture {
        net: Arc::new(net),
        model,
        stats,
        ds,
        trajs,
    }
}

/// Drives the trajectories through an engine with a deterministic but
/// irregular interleaving: each tick advances a seed-dependent subset of
/// the still-active sessions via `observe_batch` (so ticks mix batch sizes
/// 1, 2, ... n), then closes everything. Identical schedule for identical
/// seeds, so two engines fed the same seed see the same workload.
pub fn interleaved<E: SessionEngine + ?Sized>(
    engine: &mut E,
    trajs: &[&MappedTrajectory],
    schedule_seed: u64,
) -> Vec<Vec<u8>> {
    let handles: Vec<_> = trajs
        .iter()
        .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
        .collect();
    let mut pos = vec![0usize; trajs.len()];
    let mut rng = schedule_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        // xorshift64* — self-contained schedule randomness
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut events = Vec::new();
    let mut out = Vec::new();
    loop {
        events.clear();
        for (k, t) in trajs.iter().enumerate() {
            // ~2/3 of active sessions advance each tick; stragglers catch
            // up on later ticks, so ticks interleave trips at different
            // positions.
            if pos[k] < t.len() && next() % 3 != 0 {
                events.push((handles[k], t.segments[pos[k]]));
                pos[k] += 1;
            }
        }
        if events.is_empty() {
            if pos.iter().zip(trajs).all(|(&p, t)| p == t.len()) {
                break;
            }
            continue; // unlucky tick: nobody advanced
        }
        engine.observe_batch(&events, &mut out);
        assert_eq!(out.len(), events.len());
    }
    handles.into_iter().map(|h| engine.close(h)).collect()
}
