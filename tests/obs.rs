//! Telemetry-spine acceptance suite: the observability layer must be
//! **invisible** to every label the system emits and faithful in what it
//! reports.
//!
//! * obs-on / obs-off byte-identity: for any interleaving and shard count
//!   (1/2/8), both serving paths (sync [`ShardedEngine`], async
//!   [`IngestEngine`]) produce labels byte-identical to an engine with no
//!   telemetry wired — and to one wired with `ObsConfig::disabled()`;
//! * ring accounting: the ops-event and span rings report exact
//!   sequence-gap/drop counts when they wrap — loss-aware, never silent;
//! * export: the Prometheus exposition matches a golden file byte-for-byte
//!   and every line parses under a name/label/value grammar check;
//! * compile-time guard: the aggregated stats surfaces destructure
//!   exhaustively, so adding a field without updating aggregation fails
//!   here first.
//!
//! Run in CI's release-mode jobs alongside the other equivalence suites.

use obs::{names, Snapshot};
use proptest::prelude::*;
use rl4oasd_repro::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

mod common;
use common::{interleaved, trained_fixture, CityKind, EngineFixture};

/// One shared fixture for every test in this file (training is the
/// expensive part; the properties only exercise serving + telemetry).
fn fixture() -> &'static EngineFixture {
    static FIXTURE: OnceLock<EngineFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| trained_fixture(CityKind::ChengduGrid, 0x0B5E))
}

/// The shard counts the byte-identity properties sweep (acceptance: 1/2/8).
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// Sum of every per-label cell of one counter name.
fn counter_sum(snap: &Snapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .filter(|c| c.name == name)
        .map(|c| c.value)
        .sum()
}

/// Total samples across every histogram cell carrying `(key, value)`.
fn hist_count(snap: &Snapshot, name: &str, label: (&str, &str)) -> u64 {
    snap.histograms
        .iter()
        .filter(|h| h.name == name && h.labels.iter().any(|(k, v)| k == label.0 && v == label.1))
        .map(|h| h.count)
        .sum()
}

/// xorshift64* schedule shared by the ingest driver.
fn schedule(seed: u64) -> impl FnMut() -> u64 {
    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Synchronous path: a `ShardedEngine` with telemetry enabled and one
    /// wired with `ObsConfig::disabled()` both label byte-identically to
    /// an engine with no telemetry at all — while the enabled run's
    /// snapshot faithfully accounts for every decision.
    #[test]
    fn telemetry_never_changes_labels_sync(seed in 0u64..10_000, n in 4usize..12) {
        let fx = fixture();
        let trajs: Vec<&MappedTrajectory> = fx.trajs[..n].iter().collect();
        let total: u64 = trajs.iter().map(|t| t.len() as u64).sum();

        for shards in SHARD_COUNTS {
            let mut plain =
                ShardedEngine::new(Arc::clone(&fx.model), Arc::clone(&fx.net), shards);
            let expected = interleaved(&mut plain, &trajs, seed);

            let off = Obs::new(ObsConfig::disabled());
            let mut muted = ShardedEngine::new(
                Arc::clone(&fx.model), Arc::clone(&fx.net), shards,
            ).with_obs(&off);
            let got_off = interleaved(&mut muted, &trajs, seed);
            prop_assert!(got_off == expected, "disabled obs changed labels ({shards} shards)");
            prop_assert!(off.snapshot().is_empty(), "disabled obs recorded something");

            let obs = Obs::new(ObsConfig::enabled());
            let mut wired = ShardedEngine::new(
                Arc::clone(&fx.model), Arc::clone(&fx.net), shards,
            ).with_obs(&obs);
            let got_on = interleaved(&mut wired, &trajs, seed);
            prop_assert!(got_on == expected, "enabled obs changed labels ({shards} shards)");

            // stats() mirrors the registry; the snapshot then accounts
            // for every decision exactly once across shards.
            let stats = wired.stats();
            let snap = obs.snapshot();
            prop_assert!(!snap.is_empty());
            prop_assert_eq!(counter_sum(&snap, names::ENGINE_DECISIONS), total);
            prop_assert_eq!(counter_sum(&snap, names::ENGINE_DECISIONS), stats.observe_events);
        }
    }

    /// Async path: an `IngestEngine` with telemetry in its config delivers
    /// final labels byte-identical to one without, at every shard count —
    /// and its shutdown snapshot carries per-shard ingest counters, the
    /// submit→label histogram and per-stage spans covering every event.
    #[test]
    fn telemetry_never_changes_labels_ingest(seed in 0u64..10_000, n in 4usize..10) {
        let fx = fixture();
        let trajs = &fx.trajs[..n];
        let total: u64 = trajs.iter().map(|t| t.len() as u64).sum();

        for shards in SHARD_COUNTS {
            let mut finals: Vec<Vec<Vec<u8>>> = Vec::new();
            for obs in [Obs::disabled(), Obs::new(ObsConfig::enabled())] {
                let enabled = obs.enabled();
                let engine = IngestEngine::new(
                    Arc::clone(&fx.model),
                    Arc::clone(&fx.net),
                    shards,
                    IngestConfig {
                        flush: FlushPolicy::new(4, Duration::from_micros(200)),
                        obs: obs.clone(),
                        ..Default::default()
                    },
                );
                let handle = engine.handle();
                let mut next = schedule(seed);
                let submit = |session, seg| {
                    while handle.submit(session, seg) == Err(SubmitError::QueueFull) {
                        std::thread::yield_now();
                    }
                };
                let opened: Vec<_> = trajs
                    .iter()
                    .map(|t| handle.open(t.sd_pair().unwrap(), t.start_time).unwrap())
                    .collect();
                let mut pos = vec![0usize; trajs.len()];
                loop {
                    let mut advanced = false;
                    for (k, t) in trajs.iter().enumerate() {
                        if pos[k] < t.len() && !next().is_multiple_of(3) {
                            submit(opened[k].0, t.segments[pos[k]]);
                            pos[k] += 1;
                            advanced = true;
                        }
                    }
                    if !advanced && pos.iter().zip(trajs).all(|(&p, t)| p == t.len()) {
                        break;
                    }
                }
                finals.push(
                    opened
                        .into_iter()
                        .map(|(session, _sub)| handle.close(session).unwrap().wait().unwrap())
                        .collect(),
                );

                let report = engine.shutdown();
                prop_assert_eq!(report.ingest.flushed_events, total);
                let snap = report.obs;
                if enabled {
                    prop_assert!(!snap.is_empty());
                    prop_assert_eq!(counter_sum(&snap, names::INGEST_SUBMITTED), total);
                    prop_assert_eq!(counter_sum(&snap, names::INGEST_FLUSHED), total);
                    let latency_samples = (0..shards)
                        .map(|s| {
                            hist_count(&snap, names::INGEST_LATENCY, ("shard", &s.to_string()))
                        })
                        .sum::<u64>();
                    prop_assert!(
                        latency_samples == total,
                        "submit→label histogram lost samples: {latency_samples} != {total}"
                    );
                    // Every flush traced: the per-stage breakdown holds
                    // at least one span per executed flush.
                    prop_assert!(hist_count(&snap, names::STAGE_NANOS, ("stage", "flush")) > 0);
                    prop_assert!(
                        hist_count(&snap, names::STAGE_NANOS, ("stage", "batch_compute")) > 0
                    );
                    prop_assert!(
                        hist_count(&snap, names::STAGE_NANOS, ("stage", "label_delivery")) > 0
                    );
                    prop_assert!(
                        hist_count(&snap, names::STAGE_NANOS, ("stage", "enqueue_wait")) == total,
                        "enqueue-wait must be recorded once per event"
                    );
                } else {
                    prop_assert!(snap.is_empty(), "disabled obs recorded something");
                }
            }
            prop_assert!(
                finals[0] == finals[1],
                "telemetry changed ingest labels ({shards} shards)"
            );
        }
    }
}

/// The ops-event ring wraps loss-aware: a tailer that fell behind learns
/// exactly how many events it missed, and sequence numbers stay gap-free.
#[test]
fn event_ring_wrap_reports_exact_gap() {
    let obs = Obs::new(ObsConfig {
        enabled: true,
        event_capacity: 4,
        span_capacity: 2,
        sample_capacity: 4,
    });
    for shed in 0..10 {
        obs.event(OpsEvent::BackpressureShed { shed });
    }
    // Ring holds seqs 6..=9; a tailer resuming from 0 missed 6.
    let tail = obs.tail_events(0);
    assert_eq!(tail.missed, 6);
    let seqs: Vec<u64> = tail.events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![6, 7, 8, 9]);
    assert!(
        seqs.windows(2).all(|w| w[1] == w[0] + 1),
        "sequence gap inside the ring"
    );
    // A tailer inside the retained window is loss-free.
    let caught_up = obs.tail_events(7);
    assert_eq!(caught_up.missed, 0);
    assert_eq!(caught_up.events.len(), 3);
    // The snapshot reports the lifetime total, not just the retained tail.
    assert_eq!(obs.snapshot().events_total, 10);
}

/// The span ring evicts oldest-first and counts every drop.
#[test]
fn span_ring_wrap_counts_drops() {
    let obs = Obs::new(ObsConfig {
        enabled: true,
        event_capacity: 4,
        span_capacity: 2,
        sample_capacity: 4,
    });
    let stage = obs.stage(Stage::Flush, 0);
    for _ in 0..5 {
        let span = stage.start();
        stage.finish(span);
    }
    let snap = obs.snapshot();
    assert_eq!(snap.spans.len(), 2);
    assert_eq!(snap.spans_dropped, 3);
    assert_eq!(snap.spans[0].seq, 3);
    assert_eq!(snap.spans[1].seq, 4);
    // The histogram saw all five spans even though the ring kept two.
    assert_eq!(hist_count(&snap, names::STAGE_NANOS, ("stage", "flush")), 5);
}

/// A deterministic registry: fixed counters, gauges and histogram samples
/// so the Prometheus exposition is byte-stable.
fn golden_obs() -> Obs {
    let obs = Obs::new(ObsConfig::enabled());
    obs.counter(names::INGEST_SUBMITTED, &[("shard", "0")])
        .add(128);
    obs.counter(names::INGEST_SUBMITTED, &[("shard", "1")])
        .add(64);
    obs.counter(names::INGEST_REJECTED, &[("shard", "0")])
        .add(3);
    obs.gauge(names::ENGINE_SESSIONS, &[("shard", "0"), ("tier", "hot")])
        .set(41);
    obs.gauge(
        names::ENGINE_SESSIONS,
        &[("shard", "0"), ("tier", "frozen")],
    )
    .set(7);
    obs.gauge(names::ENGINE_ARENA_BYTES, &[("shard", "0")])
        .set(65_536);
    let latency = obs.histogram(names::INGEST_LATENCY, &[("shard", "0")]);
    for nanos in [1_000, 2_000, 4_000, 8_000, 8_000, 64_000] {
        latency.record_nanos(nanos);
    }
    obs
}

/// Byte-for-byte golden-file check of the Prometheus text exposition.
/// Re-record after an intentional format change with
/// `OBS_RECORD_GOLDEN=1 cargo test --test obs prometheus`.
#[test]
fn prometheus_exposition_matches_golden_file() {
    let text = golden_obs().snapshot().to_prometheus();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/prometheus.txt");
    if std::env::var_os("OBS_RECORD_GOLDEN").is_some() {
        std::fs::write(path, &text).expect("record golden file");
    }
    let golden = std::fs::read_to_string(path)
        .expect("tests/golden/prometheus.txt missing; re-record with OBS_RECORD_GOLDEN=1");
    assert_eq!(
        text, golden,
        "Prometheus exposition drifted from tests/golden/prometheus.txt \
         (re-record with OBS_RECORD_GOLDEN=1 if the change is intentional)"
    );
}

/// Line-by-line grammar check of the exposition: every line is either a
/// `# TYPE` declaration or `name{label="value",...} number`, names match
/// the Prometheus identifier charset, every sample's name was declared by
/// a preceding TYPE line, and the histogram summary carries its quantile
/// + `_sum` + `_count` lines.
#[test]
fn prometheus_exposition_parses_line_by_line() {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    /// Splits `name{k="v",...}` into the name and its label pairs.
    fn parse_series(s: &str) -> Option<(String, Vec<(String, String)>)> {
        let Some(open) = s.find('{') else {
            return valid_name(s).then(|| (s.to_string(), Vec::new()));
        };
        let name = &s[..open];
        let body = s.strip_suffix('}')?.get(open + 1..)?;
        if !valid_name(name) {
            return None;
        }
        let mut labels = Vec::new();
        let mut rest = body;
        while !rest.is_empty() {
            let eq = rest.find("=\"")?;
            let key = &rest[..eq];
            if !valid_name(key) {
                return None;
            }
            // Scan the quoted value, honouring \" \\ \n escapes.
            let mut value = String::new();
            let mut chars = rest[eq + 2..].char_indices();
            let close = loop {
                let (i, c) = chars.next()?;
                match c {
                    '"' => break eq + 2 + i,
                    '\\' => {
                        let (_, esc) = chars.next()?;
                        if !matches!(esc, '"' | '\\' | 'n') {
                            return None;
                        }
                        value.push(esc);
                    }
                    _ => value.push(c),
                }
            };
            labels.push((key.to_string(), value));
            rest = &rest[close + 1..];
            rest = rest.strip_prefix(',').unwrap_or(rest);
        }
        Some((name.to_string(), labels))
    }

    let text = golden_obs().snapshot().to_prometheus();
    let mut declared: Vec<(String, String)> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            let (name, kind) = decl
                .split_once(' ')
                .unwrap_or_else(|| panic!("line {lineno}: malformed TYPE declaration: {line:?}"));
            assert!(valid_name(name), "line {lineno}: bad metric name {name:?}");
            assert!(
                matches!(kind, "counter" | "gauge" | "summary"),
                "line {lineno}: unknown metric type {kind:?}"
            );
            declared.push((name.to_string(), kind.to_string()));
            continue;
        }
        assert!(
            !line.starts_with('#'),
            "line {lineno}: unexpected comment {line:?}"
        );
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("line {lineno}: no value separator: {line:?}"));
        assert!(
            value.parse::<f64>().is_ok(),
            "line {lineno}: unparseable sample value {value:?}"
        );
        let (name, labels) = parse_series(series)
            .unwrap_or_else(|| panic!("line {lineno}: malformed series {series:?}"));
        // Summary child series (`x_sum`, `x_count`) belong to `x`.
        let base = name
            .strip_suffix("_sum")
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| declared.iter().any(|(n, k)| n == base && k == "summary"))
            .unwrap_or(&name);
        assert!(
            declared.iter().any(|(n, _)| n == base),
            "line {lineno}: sample {name:?} has no preceding TYPE declaration"
        );
        for (key, _) in &labels {
            assert!(valid_name(key), "line {lineno}: bad label key {key:?}");
        }
        samples += 1;
    }
    assert!(samples > 0, "exposition contained no samples");
    // The histogram exported as a summary: quantiles + _sum + _count.
    for needle in ["quantile=\"0.5\"", "quantile=\"0.9\"", "quantile=\"0.99\""] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    assert!(text.contains("oasd_ingest_latency_nanos_sum{shard=\"0\"}"));
    assert!(text.contains("oasd_ingest_latency_nanos_count{shard=\"0\"} 6"));
}

/// Compile-time guard (satellite): every aggregated stats surface
/// destructures exhaustively — adding a field to `EngineStats`,
/// `IngestStats` or `IngestReport` without updating the aggregation
/// logic fails to compile *here*, with a pointer to the real sites.
#[test]
fn stats_surfaces_destructure_exhaustively() {
    // EngineStats: aggregated in `EngineStats::add_assign` — update it
    // (and the obs gauge mirror in core::engine) when this breaks.
    let EngineStats {
        sessions_opened,
        sessions_closed,
        observe_events,
        batched_events,
        batched_rounds,
        scalar_events,
        model_swaps,
        sessions_hibernated,
        sessions_rehydrated,
        resident_sessions,
        frozen_sessions,
        resident_bytes,
        frozen_bytes,
        frozen_footprint_bytes,
    } = EngineStats::default();
    let sum = sessions_opened
        + sessions_closed
        + observe_events
        + batched_events
        + batched_rounds
        + scalar_events
        + model_swaps
        + sessions_hibernated
        + sessions_rehydrated
        + resident_sessions
        + frozen_sessions
        + resident_bytes
        + frozen_bytes
        + frozen_footprint_bytes;
    assert_eq!(sum, 0, "default EngineStats must be all-zero");

    // IngestStats / IngestReport: merged in `IngestFrontDoor::shutdown`
    // and `IngestEngine::shutdown` — update those (and the worker
    // telemetry mirror in traj::ingest) when these break.
    #[allow(dead_code)]
    fn ingest_guard(stats: &IngestStats, report: &IngestReport) {
        let IngestStats {
            submitted,
            rejected_full,
            flushed_events,
            flushes,
            max_flush_batch,
            shed_events,
            quarantined_events,
            quarantined_sessions,
            worker_restarts,
            deadline_exceeded,
            latency,
        } = stats;
        let _ = (
            submitted,
            rejected_full,
            flushed_events,
            flushes,
            max_flush_batch,
            shed_events,
            quarantined_events,
            quarantined_sessions,
            worker_restarts,
            deadline_exceeded,
            latency,
        );
        let IngestReport {
            ingest,
            engine,
            shard_stats,
            decision_counts,
            epoch_stats,
            obs,
        } = report;
        let _ = (
            ingest,
            engine,
            shard_stats,
            decision_counts,
            epoch_stats,
            obs,
        );
    }
}
