//! End-to-end integration: city → traffic → raw GPS → map matching →
//! preprocessing → training → online detection → evaluation.

use rl4oasd_repro::prelude::*;
use rnet::{CityBuilder, CityConfig};

fn tiny_city(seed: u64) -> RoadNetwork {
    CityBuilder::new(CityConfig::tiny(seed)).build()
}

#[test]
fn full_pipeline_on_simulated_gps() {
    let net = tiny_city(42);
    // Simulate raw GPS, map-match it, and check the matched corpus feeds
    // the preprocessor sensibly.
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 2,
            trajs_per_pair: (10, 12),
            generate_raw: true,
            gps_noise_std: 4.0,
            ..TrafficConfig::tiny(42)
        },
    );
    let generated = sim.generate();
    let matcher = MapMatcher::new(&net, MatchConfig::default());
    let mut matched = Vec::new();
    for raw in &generated.raw {
        let m = matcher.match_trajectory(raw).expect("matching succeeds");
        assert!(net.is_connected_path(&m.segments));
        matched.push(m);
    }
    assert_eq!(matched.len(), generated.trajectories.len());
    // Map-matched routes agree with the simulator's ground-truth routes on
    // the overwhelming majority of segments.
    let mut agree = 0usize;
    let mut total = 0usize;
    for (m, t) in matched.iter().zip(&generated.trajectories) {
        let set: std::collections::HashSet<_> = t.segments.iter().collect();
        agree += m.segments.iter().filter(|s| set.contains(s)).count();
        total += m.segments.len();
    }
    assert!(
        agree as f64 / total as f64 > 0.9,
        "matched/simulated agreement too low: {agree}/{total}"
    );
}

#[test]
fn train_detect_evaluate_beats_trivial_detector() {
    let net = tiny_city(7);
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 4,
            trajs_per_pair: (60, 80),
            anomaly_ratio: 0.12,
            ..TrafficConfig::tiny(7)
        },
    );
    let generated = sim.generate();
    let train = Dataset::from_generated(&generated);
    let test = Dataset::from_generated(&sim.generate_from_pairs(&generated.pairs, (6, 8), 0.4, 9));

    let cfg = Rl4oasdConfig {
        pretrain_trajs: 150,
        joint_trajs: 150,
        ..Rl4oasdConfig::tiny(7)
    };
    let model = rl4oasd::train(&net, &train, &cfg);
    let mut detector = Rl4oasdDetector::new(&model, &net);

    let truths: Vec<Vec<u8>> = test
        .trajectories
        .iter()
        .map(|t| test.truth(t.id).unwrap().to_vec())
        .collect();
    let outputs: Vec<Vec<u8>> = test
        .trajectories
        .iter()
        .map(|t| detector.label_trajectory(t))
        .collect();
    let ours = evaluate(&outputs, &truths);

    // trivial all-normal detector
    let trivial: Vec<Vec<u8>> = truths.iter().map(|t| vec![0; t.len()]).collect();
    let base = evaluate(&trivial, &truths);
    assert!(
        ours.f1 > base.f1 + 0.2,
        "trained model ({}) must clearly beat all-normal ({})",
        ours.f1,
        base.f1
    );
    // label shape invariants
    for (o, t) in outputs.iter().zip(&test.trajectories) {
        assert_eq!(o.len(), t.len());
        assert_eq!(o[0], 0);
        assert_eq!(*o.last().unwrap(), 0);
    }
}

/// Paper-scale configuration smoke test (128-dim networks, 10k joint
/// trajectories). Ignored by default — takes several minutes; run with
/// `cargo test --release -- --ignored paper_scale`.
#[test]
#[ignore = "paper-scale run, several minutes; use --release -- --ignored"]
fn paper_scale_configuration_trains() {
    let net = CityBuilder::new(CityConfig::chengdu_like()).build();
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 50,
            trajs_per_pair: (100, 200),
            ..Default::default()
        },
    );
    let generated = sim.generate();
    let train = Dataset::from_generated(&generated);
    let test = Dataset::from_generated(&sim.generate_from_pairs(&generated.pairs, (6, 8), 0.4, 1));
    let model = rl4oasd::train(&net, &train, &Rl4oasdConfig::paper());
    let mut det = Rl4oasdDetector::new(&model, &net);
    let outputs: Vec<Vec<u8>> = test
        .trajectories
        .iter()
        .map(|t| det.label_trajectory(t))
        .collect();
    let truths: Vec<Vec<u8>> = test
        .trajectories
        .iter()
        .map(|t| test.truth(t.id).unwrap().to_vec())
        .collect();
    let m = evaluate(&outputs, &truths);
    assert!(m.f1 > 0.5, "paper-scale config F1 = {}", m.f1);
}

#[test]
fn codec_roundtrips_simulated_corpus() {
    let net = tiny_city(3);
    let sim = TrafficSimulator::new(&net, TrafficConfig::tiny(3));
    let generated = sim.generate();
    let encoded = traj::codec::encode_trajectories(&generated.trajectories);
    let decoded = traj::codec::decode_trajectories(&encoded).unwrap();
    assert_eq!(decoded, generated.trajectories);
    // compact: well under 4 bytes per segment on average for real routes
    let segments: usize = generated.trajectories.iter().map(|t| t.len()).sum();
    assert!(encoded.len() < segments * 4 + generated.trajectories.len() * 16);
}

#[test]
fn model_serialization_roundtrip_preserves_detection() {
    let net = tiny_city(11);
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 2,
            trajs_per_pair: (30, 40),
            ..TrafficConfig::tiny(11)
        },
    );
    let generated = sim.generate();
    let train = Dataset::from_generated(&generated);
    let model = rl4oasd::train(&net, &train, &Rl4oasdConfig::tiny(11));
    let json = serde_json::to_string(&model).expect("model serializes");
    let restored: TrainedModel = serde_json::from_str(&json).expect("model deserializes");
    let mut d1 = Rl4oasdDetector::new(&model, &net);
    let mut d2 = Rl4oasdDetector::new(&restored, &net);
    for t in train.trajectories.iter().take(10) {
        assert_eq!(d1.label_trajectory(t), d2.label_trajectory(t));
    }
}
