//! Property-based integration tests over the whole stack.

use proptest::prelude::*;
use rl4oasd_repro::prelude::*;
use rnet::{CityBuilder, CityConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seed yields a strongly connected city whose simulated
    /// trajectories are connected paths with consistent ground truth.
    #[test]
    fn simulator_invariants(seed in 0u64..500) {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let sim = TrafficSimulator::new(&net, TrafficConfig {
            num_sd_pairs: 2,
            trajs_per_pair: (8, 12),
            ..TrafficConfig::tiny(seed)
        });
        let data = sim.generate();
        for (t, gt) in data.trajectories.iter().zip(&data.ground_truth) {
            prop_assert!(net.is_connected_path(&t.segments));
            prop_assert_eq!(t.len(), gt.len());
            prop_assert_eq!(gt[0], 0);
            prop_assert_eq!(*gt.last().unwrap(), 0);
            prop_assert!((0.0..86_400.0).contains(&t.start_time));
        }
    }

    /// Shortest paths found on generated cities are optimal w.r.t. any
    /// sampled alternative simple route (spot check via perturbation).
    #[test]
    fn shortest_path_is_no_longer_than_simulated_routes(seed in 0u64..200) {
        let net = CityBuilder::new(CityConfig::tiny(seed)).build();
        let sim = TrafficSimulator::new(&net, TrafficConfig {
            num_sd_pairs: 2,
            trajs_per_pair: (4, 6),
            ..TrafficConfig::tiny(seed)
        });
        let data = sim.generate();
        for t in data.trajectories.iter().take(5) {
            let first = net.segment(t.segments[0]);
            let last = net.segment(*t.segments.last().unwrap());
            let sp = rnet::shortest_path(&net, first.from, last.to)
                .expect("strongly connected");
            prop_assert!(sp.cost <= net.path_length(&t.segments) + 1e-6);
        }
    }

    /// Metric bounds hold for arbitrary label sequences.
    #[test]
    fn metric_bounds(
        labels in proptest::collection::vec(
            (proptest::collection::vec(0u8..2, 1..40),
             proptest::collection::vec(0u8..2, 1..40)),
            1..10,
        )
    ) {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = labels
            .into_iter()
            .map(|(a, b)| {
                let n = a.len().min(b.len());
                (a[..n].to_vec(), b[..n].to_vec())
            })
            .collect();
        let outputs: Vec<Vec<u8>> = pairs.iter().map(|(a, _)| a.clone()).collect();
        let truths: Vec<Vec<u8>> = pairs.iter().map(|(_, b)| b.clone()).collect();
        let m = evaluate(&outputs, &truths);
        for v in [m.precision, m.recall, m.f1, m.tf1] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
        }
        // evaluating the truth against itself is perfect
        let perfect = evaluate(&truths, &truths);
        prop_assert!((perfect.f1 - 1.0).abs() < 1e-9);
    }

    /// Codec round-trips arbitrary valid trajectories.
    #[test]
    fn codec_roundtrip(
        segs in proptest::collection::vec(0u32..100_000, 1..120),
        start in 0.0f64..86_400.0,
    ) {
        let t = MappedTrajectory {
            id: traj::TrajectoryId(1),
            segments: segs.into_iter().map(SegmentId).collect(),
            start_time: start,
        };
        let bytes = traj::codec::encode_trajectories(std::slice::from_ref(&t));
        let back = traj::codec::decode_trajectories(&bytes).unwrap();
        prop_assert_eq!(back, vec![t]);
    }

    /// Delayed labeling never removes anomalies, only extends them, and
    /// extraction/reconstruction of spans is lossless.
    #[test]
    fn span_roundtrip(labels in proptest::collection::vec(0u8..2, 0..60)) {
        let spans = traj::extract_subtrajectories(&labels);
        let rebuilt = traj::labels::spans_to_labels(&spans, labels.len());
        prop_assert_eq!(rebuilt, labels);
    }
}
