//! Hot-swap equivalence harness: swapping the serving model on a live
//! engine must be invisible to every in-flight session and total for every
//! later one. For any interleaving, shard count and serving path (the
//! synchronous [`ShardedEngine`] and the async [`IngestEngine`]):
//!
//! * sessions opened **before** the swap produce label streams
//!   **byte-identical** to serving the old model alone — no event is
//!   dropped, reordered or relabelled by the swap;
//! * sessions opened **after** the swap produce label streams
//!   byte-identical to serving the new model alone;
//! * the old model's `Arc` is released the moment its last pre-swap
//!   session closes (drop-order test via `Weak`).
//!
//! Run in CI's release-mode `native` job alongside the kernel/shard/ingest
//! equivalence suites.

use proptest::prelude::*;
use rl4oasd::{IngestEngine, SwapModel};
use rl4oasd_repro::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

mod common;
use common::{trained_fixture, CityKind};

struct Fixture {
    net: Arc<RoadNetwork>,
    /// The model engines start serving ("old").
    v1: Arc<TrainedModel>,
    /// The retrained model published mid-stream ("new").
    v2: Arc<TrainedModel>,
    trajs: Vec<MappedTrajectory>,
}

/// One shared two-model fixture for every test in this file (training is
/// the expensive part; the properties only exercise serving + swapping).
/// Built from the shared cross-network fixture recipe, plus a second
/// model retrained on the same corpus with different seeds.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let base = trained_fixture(CityKind::ChengduGrid, 0x5A7);
        let v2 = Arc::new(rl4oasd::train(
            &base.net,
            &base.ds,
            &Rl4oasdConfig::tiny(0xBEEF),
        ));
        // Guard (deterministic): the two models must actually disagree
        // somewhere, or the swap assertions below would be vacuous.
        let fx = Fixture {
            net: base.net,
            v1: base.model,
            v2,
            trajs: base.trajs,
        };
        let a = reference_labels(&fx.v1, &fx.net, &fx.trajs[..20]);
        let b = reference_labels(&fx.v2, &fx.net, &fx.trajs[..20]);
        assert_ne!(a, b, "fixture models agree everywhere; pick other seeds");
        fx
    })
}

/// The shard counts the swap properties sweep (acceptance: 1/2/8).
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// Per-trajectory labels of one model alone — THE reference both halves of
/// every swap test compare against (the engine contract makes the drive
/// irrelevant: single-session scalar == batched == sharded == ingest).
fn reference_labels(
    model: &Arc<TrainedModel>,
    net: &Arc<RoadNetwork>,
    trajs: &[MappedTrajectory],
) -> Vec<Vec<u8>> {
    let mut engine = StreamEngine::new(Arc::clone(model), Arc::clone(net));
    trajs
        .iter()
        .map(|t| {
            let h = engine.open(t.sd_pair().unwrap(), t.start_time);
            for &seg in &t.segments {
                engine.observe(h, seg);
            }
            engine.close(h)
        })
        .collect()
}

/// xorshift64* tick schedule shared by the sync and ingest drivers.
fn schedule(seed: u64) -> impl FnMut() -> u64 {
    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    }
}

/// Drives a synchronous engine through a mid-stream swap: the `before`
/// trips open under the old model and advance a few irregular ticks, then
/// `swap` runs, then the `after` trips open and everything drains to
/// completion in **mixed** `observe_batch` ticks (old-epoch and new-epoch
/// sessions share ticks). Returns the final labels of both groups.
fn swap_drive_sync<E: SessionEngine>(
    engine: &mut E,
    swap: impl FnOnce(&mut E),
    before: &[MappedTrajectory],
    after: &[MappedTrajectory],
    seed: u64,
) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let mut next = schedule(seed);
    let hb: Vec<_> = before
        .iter()
        .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
        .collect();
    let mut pos_b = vec![0usize; before.len()];
    let mut out = Vec::new();
    // Phase 1: pre-swap sessions advance ~2 irregular ticks mid-trip.
    for _ in 0..2 {
        let mut events = Vec::new();
        for (k, t) in before.iter().enumerate() {
            if pos_b[k] < t.len() && !next().is_multiple_of(3) {
                events.push((hb[k], t.segments[pos_b[k]]));
                pos_b[k] += 1;
            }
        }
        if !events.is_empty() {
            engine.observe_batch(&events, &mut out);
        }
    }

    swap(engine);

    // Phase 2: post-swap sessions open and both groups drain together.
    let ha: Vec<_> = after
        .iter()
        .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
        .collect();
    let mut pos_a = vec![0usize; after.len()];
    loop {
        let mut events = Vec::new();
        for (k, t) in before.iter().enumerate() {
            if pos_b[k] < t.len() && !next().is_multiple_of(3) {
                events.push((hb[k], t.segments[pos_b[k]]));
                pos_b[k] += 1;
            }
        }
        for (k, t) in after.iter().enumerate() {
            if pos_a[k] < t.len() && !next().is_multiple_of(3) {
                events.push((ha[k], t.segments[pos_a[k]]));
                pos_a[k] += 1;
            }
        }
        if events.is_empty() {
            let done_b = pos_b.iter().zip(before).all(|(&p, t)| p == t.len());
            let done_a = pos_a.iter().zip(after).all(|(&p, t)| p == t.len());
            if done_b && done_a {
                break;
            }
            continue; // unlucky tick: nobody advanced
        }
        engine.observe_batch(&events, &mut out);
        assert_eq!(out.len(), events.len());
    }
    (
        hb.into_iter().map(|h| engine.close(h)).collect(),
        ha.into_iter().map(|h| engine.close(h)).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Synchronous path: a `ShardedEngine::swap_model` between ticks gives
    /// pre-swap sessions old-model-only labels and post-swap sessions
    /// new-model-only labels, byte-identically, at every shard count.
    #[test]
    fn sharded_swap_splits_sessions_by_model(seed in 0u64..10_000, n in 4usize..12) {
        let fx = fixture();
        let trajs = &fx.trajs[..n];
        let (before, after) = trajs.split_at(n / 2);
        let expected_old = reference_labels(&fx.v1, &fx.net, before);
        let expected_new = reference_labels(&fx.v2, &fx.net, after);

        for shards in SHARD_COUNTS {
            let mut engine =
                ShardedEngine::new(Arc::clone(&fx.v1), Arc::clone(&fx.net), shards);
            let (got_old, got_new) = swap_drive_sync(
                &mut engine,
                |e: &mut ShardedEngine| e.swap_model(Arc::clone(&fx.v2)),
                before,
                after,
                seed,
            );
            prop_assert!(
                got_old == expected_old,
                "pre-swap sessions diverged from old model at {} shards", shards
            );
            prop_assert!(
                got_new == expected_new,
                "post-swap sessions diverged from new model at {} shards", shards
            );
            // Every session closed => every old epoch drained and retired.
            prop_assert!(engine
                .shard_live_model_epochs()
                .into_iter()
                .all(|live| live == 1));
            prop_assert_eq!(engine.stats().model_swaps, shards as u64);
            prop_assert!(Arc::ptr_eq(engine.model(), &fx.v2));
        }
    }

    /// Async path: `IngestHandle::swap_model` on a running `IngestEngine`
    /// takes effect for newly opened sessions without dropping, reordering
    /// or relabelling any in-flight session's events — per-session
    /// subscription streams and final labels are byte-identical to the
    /// respective single-model references, at every shard count, for both
    /// an immediate and a batching flush policy.
    #[test]
    fn ingest_swap_splits_sessions_by_model(seed in 0u64..10_000, n in 4usize..10) {
        let fx = fixture();
        let trajs = &fx.trajs[..n];
        let (before, after) = trajs.split_at(n / 2);
        let expected_old = reference_labels(&fx.v1, &fx.net, before);
        let expected_new = reference_labels(&fx.v2, &fx.net, after);

        for shards in SHARD_COUNTS {
            for policy in [
                FlushPolicy::immediate(),
                FlushPolicy::new(4, Duration::from_micros(200)),
            ] {
                let engine = IngestEngine::new(
                    Arc::clone(&fx.v1),
                    Arc::clone(&fx.net),
                    shards,
                    IngestConfig { flush: policy, ..Default::default() },
                );
                let handle = engine.handle();
                let mut next = schedule(seed);
                let submit = |session, seg| {
                    while handle.submit(session, seg) == Err(SubmitError::QueueFull) {
                        std::thread::yield_now();
                    }
                };

                let opened_b: Vec<_> = before
                    .iter()
                    .map(|t| handle.open(t.sd_pair().unwrap(), t.start_time).unwrap())
                    .collect();
                let mut pos_b = vec![0usize; before.len()];
                // Pre-swap sessions get an irregular prefix of events.
                for (k, t) in before.iter().enumerate() {
                    let prefix = (next() as usize % t.len()).min(t.len() - 1);
                    while pos_b[k] < prefix {
                        submit(opened_b[k].0, t.segments[pos_b[k]]);
                        pos_b[k] += 1;
                    }
                }

                handle.swap_model(Arc::clone(&fx.v2)).unwrap();

                let opened_a: Vec<_> = after
                    .iter()
                    .map(|t| handle.open(t.sd_pair().unwrap(), t.start_time).unwrap())
                    .collect();
                let mut pos_a = vec![0usize; after.len()];
                // Both groups drain together, irregularly interleaved.
                loop {
                    let mut advanced = false;
                    for (k, t) in before.iter().enumerate() {
                        if pos_b[k] < t.len() && !next().is_multiple_of(3) {
                            submit(opened_b[k].0, t.segments[pos_b[k]]);
                            pos_b[k] += 1;
                            advanced = true;
                        }
                    }
                    for (k, t) in after.iter().enumerate() {
                        if pos_a[k] < t.len() && !next().is_multiple_of(3) {
                            submit(opened_a[k].0, t.segments[pos_a[k]]);
                            pos_a[k] += 1;
                            advanced = true;
                        }
                    }
                    if !advanced
                        && pos_b.iter().zip(before).all(|(&p, t)| p == t.len())
                        && pos_a.iter().zip(after).all(|(&p, t)| p == t.len())
                    {
                        break;
                    }
                }

                let collect = |opened: Vec<(SessionId, traj::Subscription)>| -> Vec<(Vec<u8>, Vec<u8>)> {
                    opened
                        .into_iter()
                        .map(|(session, sub)| {
                            let finals = handle.close(session).unwrap().wait().unwrap();
                            let mut stream = Vec::new();
                            while let Some(label) = sub.recv() {
                                stream.push(label);
                            }
                            (stream, finals)
                        })
                        .collect()
                };
                let got_b = collect(opened_b);
                let got_a = collect(opened_a);
                for (k, (stream, finals)) in got_b.iter().enumerate() {
                    prop_assert!(
                        finals == &expected_old[k],
                        "pre-swap finals diverged: session {} shards {} policy {:?}",
                        k, shards, policy
                    );
                    prop_assert!(
                        stream.len() == before[k].len(),
                        "pre-swap events dropped: session {} shards {}", k, shards
                    );
                }
                for (k, (stream, finals)) in got_a.iter().enumerate() {
                    prop_assert!(
                        finals == &expected_new[k],
                        "post-swap finals diverged: session {} shards {} policy {:?}",
                        k, shards, policy
                    );
                    prop_assert_eq!(stream.len(), after[k].len());
                }

                let report = engine.shutdown();
                let total: u64 = trajs.iter().map(|t| t.len() as u64).sum();
                prop_assert_eq!(report.ingest.submitted, total);
                prop_assert!(report.ingest.flushed_events == total, "swap dropped events");
                prop_assert_eq!(report.engine.observe_events, total);
                prop_assert_eq!(report.engine.sessions_closed, trajs.len() as u64);
                prop_assert_eq!(report.engine.model_swaps, shards as u64);
            }
        }
    }
}

/// Drop order: the engine holds the old model only through its epoch
/// bookkeeping, so once the last pre-swap session closes, the old model's
/// `Arc` strong count hits zero — observable through a `Weak` that stops
/// upgrading. (The new model must *not* be released.)
#[test]
fn old_model_arc_released_when_last_preswap_session_closes() {
    let fx = fixture();
    // A private clone of v1 so this test owns the only strong handles.
    let old = Arc::new(TrainedModel::clone(&fx.v1));
    let old_weak = Arc::downgrade(&old);
    let mut engine = StreamEngine::new(old, Arc::clone(&fx.net));

    let t1 = &fx.trajs[0];
    let t2 = &fx.trajs[1];
    let s1 = engine.open(t1.sd_pair().unwrap(), t1.start_time);
    let s2 = engine.open(t2.sd_pair().unwrap(), t2.start_time);
    engine.observe(s1, t1.segments[0]);
    engine.observe(s2, t2.segments[0]);

    engine.swap_model(Arc::clone(&fx.v2));
    assert_eq!(engine.live_model_epochs(), 2);
    assert!(
        old_weak.upgrade().is_some(),
        "old model freed while pre-swap sessions still run"
    );

    engine.close(s1);
    assert!(
        old_weak.upgrade().is_some(),
        "old model freed before its last session closed"
    );
    engine.close(s2);
    assert!(
        old_weak.upgrade().is_none(),
        "old model not released by its last pre-swap close"
    );
    assert_eq!(engine.live_model_epochs(), 1);

    // The serving model is untouched; new sessions keep working.
    let s3 = engine.open(t1.sd_pair().unwrap(), t1.start_time);
    for &seg in &t1.segments {
        engine.observe(s3, seg);
    }
    assert_eq!(engine.close(s3).len(), t1.len());
}

/// Repeated swaps on a busy engine never accumulate epochs beyond the
/// drain set, and sessions spanning several swaps stay on their opening
/// model throughout.
#[test]
fn repeated_swaps_drain_cleanly() {
    let fx = fixture();
    let trajs = &fx.trajs[..6];
    let expected_old = reference_labels(&fx.v1, &fx.net, trajs);
    let mut engine = StreamEngine::new(Arc::clone(&fx.v1), Arc::clone(&fx.net));
    let handles: Vec<_> = trajs
        .iter()
        .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
        .collect();
    // Sessions opened under v1 survive v2 -> v1 -> v2 swap churn.
    for k in 0..3 {
        let m = if k % 2 == 0 { &fx.v2 } else { &fx.v1 };
        engine.swap_model(Arc::clone(m));
        assert_eq!(
            engine.live_model_epochs(),
            2,
            "idle intermediate epochs must retire at swap"
        );
    }
    let mut out = Vec::new();
    let max_len = trajs.iter().map(|t| t.len()).max().unwrap();
    for tick in 0..max_len {
        let events: Vec<_> = trajs
            .iter()
            .enumerate()
            .filter(|(_, t)| tick < t.len())
            .map(|(k, t)| (handles[k], t.segments[tick]))
            .collect();
        engine.observe_batch(&events, &mut out);
    }
    let got: Vec<Vec<u8>> = handles.into_iter().map(|h| engine.close(h)).collect();
    assert_eq!(got, expected_old, "swap churn changed in-flight labels");
    assert_eq!(engine.stats().model_swaps, 3);
    assert_eq!(engine.live_model_epochs(), 1);
}
