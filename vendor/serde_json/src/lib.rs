//! Offline, API-compatible subset of `serde_json`: JSON text to and from
//! the vendored serde [`Value`] tree.
//!
//! Numbers are written with Rust's shortest-roundtrip float formatting, so
//! `f32`/`f64` values survive a serialise → parse cycle bit-exactly.
//! Non-finite floats are written as `null` (upstream errors instead; the
//! workspace only serialises finite model weights).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialisation error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialises a value to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Serialises a value to human-indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.serialize(), &mut out, 0);
    Ok(out)
}

/// Parses JSON text into a value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::deserialize(&value)?)
}

// ---- writer ---------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // Rust's Display is shortest-roundtrip; it never emits an exponent,
        // so the output is always valid JSON.
        let s = f.to_string();
        out.push_str(&s);
        // Mark integral floats as floats so the reader keeps the type.
        if !s.contains('.') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are not produced by our
                            // writer; decode lone BMP escapes only.
                            let c = char::from_u32(code as u32)
                                .ok_or_else(|| Error::new("invalid \\u escape"))?;
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u16::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(n) = digits.parse::<u64>() {
                    if n <= i64::MAX as u64 {
                        return Ok(Value::Int(-(n as i64)));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-5i32).unwrap(), "-5");
        assert_eq!(from_str::<i32>("-5").unwrap(), -5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &f in &[
            0.1f64,
            -3.25,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            #[allow(clippy::excessive_precision)]
            123456789.123456789,
            5.0,
        ] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "via {s}");
        }
        for &f in &[0.1f32, -7.5, 1.0 / 3.0, 2.0] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f32>(&s).unwrap(), f, "via {s}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
        let o: Vec<Option<u8>> = vec![Some(1), None];
        let s = to_string(&o).unwrap();
        assert_eq!(s, "[1,null]");
        assert_eq!(from_str::<Vec<Option<u8>>>(&s).unwrap(), o);
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(from_str::<Vec<u32>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<u32>("{}").is_err());
        assert!(from_str::<u32>("12 34").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u32, "x".to_string()), (2, "y".to_string())];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, String)>>(&s).unwrap(), v);
    }
}
