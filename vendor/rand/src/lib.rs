//! Offline, API-compatible subset of the `rand` crate (0.8-style API).
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 — a
//! different stream than upstream `StdRng`, but the workspace only relies
//! on determinism-given-seed, not on a specific stream), the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits with `gen`, `gen_range`,
//! `gen_bool`, and [`seq::SliceRandom`] with `shuffle`/`choose`.

use std::ops::{Range, RangeInclusive};

/// Low-level random source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        for chunk in dst.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly "at standard" (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly (argument of `gen_range`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Multiply-shift (Lemire) without rejection: negligible bias for the
    // small spans used here, deterministic, branch-free.
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a standard-distributed value (`[0,1)` floats, any-bit ints).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic given the seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
        // all values of a small range are hit
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
