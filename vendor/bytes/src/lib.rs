//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Implements exactly the surface the workspace uses: [`Bytes`],
//! [`BytesMut`] and the [`Buf`]/[`BufMut`] traits with little-endian
//! get/put helpers. Backed by plain `Vec<u8>`/slices — no refcounted
//! buffer sharing, which the workspace does not rely on.

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer (here: an owned `Vec<u8>` behind `Deref`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes into `dst` and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEADBEEF);
        buf.put_f64_le(1.5);
        buf.put_u8(7);
        let bytes = buf.freeze();
        let mut cur: &[u8] = &bytes;
        assert_eq!(cur.get_u32_le(), 0xDEADBEEF);
        assert_eq!(cur.get_f64_le(), 1.5);
        assert_eq!(cur.get_u8(), 7);
        assert!(!cur.has_remaining());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1, 2];
        cur.get_u32_le();
    }
}
