//! Offline, API-compatible subset of `serde`.
//!
//! Instead of upstream's visitor architecture, this subset models
//! serialisation through a concrete [`Value`] tree: [`Serialize`] renders a
//! type into a `Value` and [`Deserialize`] rebuilds it from one. The
//! `serde_json` stub then maps `Value` to and from JSON text. The derive
//! macros (re-exported from `serde_derive`) understand the container
//! attributes used in this workspace: `#[serde(from = "T", into = "T")]`
//! and the field attribute `#[serde(with = "module")]` (where `module`
//! provides `fn serialize(&T) -> Value` and
//! `fn deserialize(&Value) -> Result<T, Error>`).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// A self-describing serialised value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (used for negative values).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key–value map (insertion-ordered).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// (De)serialisation error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }

    /// A "missing field" error.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` for `{ty}`"))
    }

    /// An "unexpected shape" error.
    pub fn expected(what: &str, ty: &str) -> Self {
        Error(format!("expected {what} for `{ty}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`].
pub trait Serialize {
    /// Serialises into the value tree.
    fn serialize(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserialises from the value tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---- primitives -----------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n: u64 = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    _ => return Err(Error::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }

        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => i64::try_from(n)
                        .map_err(|_| Error::msg(format!("{n} out of i64 range")))?,
                    _ => return Err(Error::expected("integer", stringify!($t))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::UInt(n) => Ok(n as $t),
                    Value::Int(n) => Ok(n as $t),
                    // Non-finite floats serialise as null (JSON has no
                    // representation for them); accept the round trip.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

// ---- containers -----------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", "Vec"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", "array"))?;
        if seq.len() != N {
            return Err(Error::msg(format!(
                "expected {N} elements, got {}",
                seq.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(seq) {
            *slot = T::deserialize(item)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::expected("sequence", "tuple"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error::msg(format!(
                        "expected tuple of {expected}, got {}", seq.len()
                    )));
                }
                Ok(($($name::deserialize(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        entry_pairs(v, "HashMap")?.collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        entry_pairs(v, "BTreeMap")?.collect()
    }
}

fn entry_pairs<'a, K: Deserialize, V: Deserialize>(
    v: &'a Value,
    ty: &'static str,
) -> Result<impl Iterator<Item = Result<(K, V), Error>> + 'a, Error> {
    let seq = v
        .as_seq()
        .ok_or_else(|| Error::expected("entry list", ty))?;
    Ok(seq.iter().map(|entry| {
        let pair = entry
            .as_seq()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| Error::expected("[key, value] entry", "map"))?;
        Ok((K::deserialize(&pair[0])?, V::deserialize(&pair[1])?))
    }))
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", "HashSet"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", "BTreeSet"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);
        let o: Option<u8> = Some(3);
        assert_eq!(Option::<u8>::deserialize(&o.serialize()).unwrap(), o);
        let n: Option<u8> = None;
        assert_eq!(Option::<u8>::deserialize(&n.serialize()).unwrap(), n);
        let t = (1u32, -2i32, "x".to_string());
        assert_eq!(
            <(u32, i32, String)>::deserialize(&t.serialize()).unwrap(),
            t
        );
        let mut m = HashMap::new();
        m.insert((1u32, 2u32), 3u64);
        assert_eq!(
            HashMap::<(u32, u32), u64>::deserialize(&m.serialize()).unwrap(),
            m
        );
        let s: HashSet<u16> = [1, 5, 9].into_iter().collect();
        assert_eq!(HashSet::<u16>::deserialize(&s.serialize()).unwrap(), s);
    }

    #[test]
    fn range_errors() {
        assert!(u8::deserialize(&Value::UInt(300)).is_err());
        assert!(u32::deserialize(&Value::Int(-1)).is_err());
        assert!(bool::deserialize(&Value::UInt(1)).is_err());
    }
}
