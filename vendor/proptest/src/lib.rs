//! Offline, API-compatible subset of `proptest`.
//!
//! Supports the surface this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! `pat in strategy` bindings over numeric ranges, tuples of strategies and
//! [`collection::vec`], plus [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! case number and the assertion message. Case generation is deterministic
//! per test (seeded from the test's name), so failures reproduce.

use std::ops::Range;

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// A generator seeded deterministically from a label (the test name).
    pub fn deterministic(label: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x1000_0000_01b3);
        }
        Gen { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, gen: &mut Gen) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + gen.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (gen.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, gen: &mut Gen) -> Self::Value {
                ($(self.$idx.sample(gen),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// A strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _gen: &mut Gen) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Gen, Strategy};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` strategy: element strategy plus a length range.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, gen: &mut Gen) -> Vec<S::Value> {
            let len = if self.size.start < self.size.end {
                self.size.clone().sample(gen)
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.sample(gen)).collect()
        }
    }
}

/// Common imports for tests.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Gen, Just, ProptestConfig, Strategy};
}

/// Defines property tests: `fn name(pat in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __gen = $crate::Gen::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __gen);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __result {
                    panic!("proptest case {} of {} failed: {}", __case + 1, stringify!($name), __msg);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in -2i64..3, f in 0.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..3).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vectors_and_tuples(
            v in collection::vec(0u8..4, 2..6),
            (a, b) in (0u32..5, 10u32..12),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 4));
            prop_assert!(a < 5);
            prop_assert_eq!(b / 10, 1);
        }
    }

    #[test]
    fn deterministic_per_label() {
        let mut a = Gen::deterministic("x");
        let mut b = Gen::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x = {x} is small");
            }
        }
        always_fails();
    }
}
