//! Offline, API-compatible subset of `criterion`.
//!
//! Implements the harness surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `bench_with_input` / `finish`, [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple warm-up + median-of-samples timer printed to stdout; statistics,
//! plots and HTML reports are out of scope. Set `CRITERION_STUB_SAMPLES`
//! to override the per-bench sample count (useful in CI smoke runs).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for parity with `criterion::black_box` users.
pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to bench closures.
pub struct Bencher {
    samples: usize,
    last: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting one duration per sample (plus warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        self.last.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.last.push(t0.elapsed());
        }
    }
}

fn median(samples: &mut [Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn env_samples(default: usize) -> usize {
    std::env::var("CRITERION_STUB_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        last: Vec::with_capacity(samples),
    };
    f(&mut bencher);
    let med = median(&mut bencher.last);
    println!("bench: {name:<50} {:>12.3?} median of {samples}", med);
}

/// The benchmark harness.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: env_samples(10),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().id, self.samples, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: env_samples(10),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-bench sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = env_samples(n.max(1));
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.samples, &mut f);
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut count = 0u32;
        let mut c = Criterion::default();
        c.bench_function("counter", |b| b.iter(|| count += 1));
        // warm-up + samples iterations
        assert!(count > 1);
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let data = vec![1, 2, 3];
        let mut sum = 0;
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| sum = d.iter().sum::<i32>())
        });
        group.finish();
        assert_eq!(sum, 6);
    }

    #[test]
    fn median_of_samples() {
        let mut samples = vec![
            Duration::from_millis(5),
            Duration::from_millis(1),
            Duration::from_millis(3),
        ];
        assert_eq!(median(&mut samples), Duration::from_millis(3));
        assert_eq!(median(&mut []), Duration::ZERO);
    }
}
