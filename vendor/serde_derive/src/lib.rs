//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! Supports the item shapes present in this workspace, parsed directly from
//! the token stream (no `syn`/`quote` available offline):
//!
//! * structs with named fields (field attribute `#[serde(with = "module")]`
//!   honoured — `module` must provide `serialize(&T) -> Value` and
//!   `deserialize(&Value) -> Result<T, Error>`);
//! * newtype and tuple structs;
//! * enums with unit variants (serialised as the variant-name string);
//! * container attribute `#[serde(from = "Proxy", into = "Proxy")]`.
//!
//! Generics are not supported (none of the workspace's serialised types are
//! generic).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated invalid Rust")
}

struct Field {
    name: String,
    with: Option<String>,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<String>),
}

struct Item {
    name: String,
    from: Option<String>,
    into: Option<String>,
    shape: Shape,
}

// ---- parsing --------------------------------------------------------------

/// Extracts `key = "value"` pairs from the tokens of a `#[serde(...)]`
/// attribute's inner group.
fn parse_serde_kv(tokens: TokenStream, out: &mut Vec<(String, String)>) {
    let mut iter = tokens.into_iter().peekable();
    while let Some(tok) = iter.next() {
        if let TokenTree::Ident(key) = tok {
            if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                iter.next();
                if let Some(TokenTree::Literal(lit)) = iter.next() {
                    let raw = lit.to_string();
                    let val = raw.trim_matches('"').to_string();
                    out.push((key.to_string(), val));
                }
            } else {
                out.push((key.to_string(), String::new()));
            }
        }
    }
}

/// Consumes a leading attribute (`#[...]`) if present, returning its
/// `serde(...)` key/value pairs (empty for non-serde attributes).
fn take_attr<I: Iterator<Item = TokenTree>>(
    iter: &mut std::iter::Peekable<I>,
) -> Option<Vec<(String, String)>> {
    match iter.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {}
        _ => return None,
    }
    iter.next();
    let mut kv = Vec::new();
    if let Some(TokenTree::Group(g)) = iter.next() {
        let mut inner = g.stream().into_iter();
        if let Some(TokenTree::Ident(name)) = inner.next() {
            if name.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.next() {
                    parse_serde_kv(args.stream(), &mut kv);
                }
            }
        }
    }
    Some(kv)
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, ...).
fn skip_vis<I: Iterator<Item = TokenTree>>(iter: &mut std::iter::Peekable<I>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let mut from = None;
    let mut into = None;
    while let Some(kv) = take_attr(&mut iter) {
        for (k, v) in kv {
            match k.as_str() {
                "from" => from = Some(v),
                "into" => into = Some(v),
                other => panic!("unsupported serde container attribute `{other}`"),
            }
        }
    }
    skip_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize) stub does not support generics on `{name}`");
    }
    let shape = match (kind.as_str(), iter.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::Unit,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_unit_variants(g.stream(), &name))
        }
        (k, t) => panic!("unsupported item shape for `{name}`: {k} {t:?}"),
    };
    Item {
        name,
        from,
        into,
        shape,
    }
}

fn parse_named_fields(tokens: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = tokens.into_iter().peekable();
    loop {
        let mut with = None;
        while let Some(kv) = take_attr(&mut iter) {
            for (k, v) in kv {
                match k.as_str() {
                    "with" => with = Some(v),
                    other => panic!("unsupported serde field attribute `{other}`"),
                }
            }
        }
        skip_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name, with });
    }
    fields
}

fn count_tuple_fields(tokens: TokenStream) -> usize {
    // Fields are `vis Type` separated by depth-0 commas.
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut any = false;
    for tok in tokens {
        any = true;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma would overcount, but `struct X(T,)` does not occur;
    // count separators + 1 when any tokens were present.
    if any {
        count + 1
    } else {
        0
    }
}

fn parse_unit_variants(tokens: TokenStream, name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = tokens.into_iter().peekable();
    loop {
        while take_attr(&mut iter).is_some() {}
        match iter.next() {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            None => break,
            other => panic!("expected variant in enum `{name}`, got {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            Some(other) => panic!("enum `{name}` has a non-unit variant (unsupported): {other:?}"),
        }
    }
    variants
}

// ---- codegen --------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(proxy) = &item.into {
        format!(
            "let __proxy: {proxy} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::serialize(&__proxy)"
        )
    } else {
        match &item.shape {
            Shape::Named(fields) => {
                let mut s = String::from(
                    "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n",
                );
                for f in fields {
                    let expr = match &f.with {
                        Some(path) => format!("{path}::serialize(&self.{})", f.name),
                        None => format!("::serde::Serialize::serialize(&self.{})", f.name),
                    };
                    s.push_str(&format!(
                        "__m.push((::std::string::String::from(\"{}\"), {expr}));\n",
                        f.name
                    ));
                }
                s.push_str("::serde::Value::Map(__m)");
                s
            }
            Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
            Shape::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
            }
            Shape::Unit => "::serde::Value::Null".to_string(),
            Shape::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        format!(
                            "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\"))"
                        )
                    })
                    .collect();
                format!("match self {{ {} }}", arms.join(",\n"))
            }
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(proxy) = &item.from {
        format!(
            "let __proxy = <{proxy} as ::serde::Deserialize>::deserialize(__v)?;\n\
             ::std::result::Result::Ok(::std::convert::From::from(__proxy))"
        )
    } else {
        match &item.shape {
            Shape::Named(fields) => {
                let mut s = format!("::std::result::Result::Ok({name} {{\n");
                for f in fields {
                    let expr = match &f.with {
                        Some(path) => format!("{path}::deserialize(__fv)?"),
                        None => "::serde::Deserialize::deserialize(__fv)?".to_string(),
                    };
                    // `with`-adapter fields tolerate a missing key: the
                    // adapter is handed `Null`, so derived-data fields
                    // (e.g. caches serialised as null) stay readable from
                    // documents written before the field existed.
                    let missing = match &f.with {
                        Some(path) => format!("{path}::deserialize(&::serde::Value::Null)?"),
                        None => format!(
                            "return ::std::result::Result::Err(\
                                 ::serde::Error::missing_field(\"{name}\", \"{field}\"))",
                            field = f.name
                        ),
                    };
                    s.push_str(&format!(
                        "{field}: match ::serde::Value::get(__v, \"{field}\") {{\n\
                             ::std::option::Option::Some(__fv) => {expr},\n\
                             ::std::option::Option::None => {missing},\n\
                         }},\n",
                        field = f.name
                    ));
                }
                s.push_str("})");
                s
            }
            Shape::Tuple(1) => {
                format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"
                )
            }
            Shape::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::deserialize(&__seq[{i}])?"))
                    .collect();
                format!(
                    "let __seq = ::serde::Value::as_seq(__v)\
                         .ok_or_else(|| ::serde::Error::expected(\"sequence\", \"{name}\"))?;\n\
                     if __seq.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::Error::expected(\
                             \"{n}-element sequence\", \"{name}\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    elems.join(", ")
                )
            }
            Shape::Unit => format!("::std::result::Result::Ok({name})"),
            Shape::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
                    .collect();
                format!(
                    "match ::serde::Value::as_str(__v) {{\n\
                         ::std::option::Option::Some(__s) => match __s {{\n\
                             {},\n\
                             __other => ::std::result::Result::Err(::serde::Error::msg(\
                                 ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                         }},\n\
                         ::std::option::Option::None => ::std::result::Result::Err(\
                             ::serde::Error::expected(\"variant string\", \"{name}\")),\n\
                     }}",
                    arms.join(",\n")
                )
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
