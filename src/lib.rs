//! # RL4OASD reproduction — umbrella crate
//!
//! This crate re-exports the workspace's public API so the examples and
//! downstream users can depend on a single crate:
//!
//! * [`rnet`] — road networks and the synthetic city generator;
//! * [`traj`] — trajectories, SD pairs, the traffic simulator and the
//!   [`traj::OnlineDetector`] trait;
//! * [`mapmatch`] — HMM map matching;
//! * [`nn`] — the minimal neural-network substrate;
//! * [`rl4oasd`] — the paper's contribution: preprocessing, RSRNet, ASDNet,
//!   training and the online detector;
//! * [`baselines`] — IBOAT, DBTOD, CTSS and the GM-VSAE family;
//! * [`eval`] — NER-style F1/TF1 metrics and threshold tuning;
//! * [`scenario`] — the city-scale scenario engine with deterministic
//!   `(seed, spec)` replay, driving every serving path cross-network;
//! * [`serve`] — the `oasd-serve` network front door: a length-prefixed
//!   binary wire protocol plus an HTTP ops surface over the ingest
//!   engine, with multi-tenant model scopes and quotas;
//! * [`obs`] — the zero-dependency telemetry spine: metrics registry,
//!   stage-level tracing, ops event log, JSON/Prometheus export.
//!
//! ## Quickstart
//!
//! ```no_run
//! use rl4oasd_repro::prelude::*;
//!
//! // 1. a synthetic city and its traffic
//! let net = CityBuilder::new(CityConfig::chengdu_like()).build();
//! let sim = TrafficSimulator::new(&net, TrafficConfig::default());
//! let data = sim.generate();
//! let train = Dataset::from_generated(&data);
//!
//! // 2. train RL4OASD without any labels
//! let model = rl4oasd::train(&net, &train, &Rl4oasdConfig::default());
//!
//! // 3. detect anomalous subtrajectories online
//! let mut detector = Rl4oasdDetector::new(&model, &net);
//! let labels = detector.label_trajectory(&train.trajectories[0]);
//! println!("anomalous spans: {:?}", traj::extract_subtrajectories(&labels));
//! ```

pub use baselines;
pub use eval;
pub use mapmatch;
pub use nn;
pub use obs;
pub use rl4oasd;
pub use rnet;
pub use scenario;
pub use serve;
pub use traj;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use baselines::{Ctss, Dbtod, Iboat, RouteStats, ScoringDetector, Thresholded};
    pub use eval::{evaluate, DetectionMetrics};
    pub use mapmatch::{MapMatcher, MatchConfig};
    pub use obs::{Obs, ObsConfig, OpsEvent, Snapshot, Stage};
    pub use rl4oasd::{
        EngineStats, EpochStats, HibernationConfig, IngestEngine, IngestReport, OnlineLearner,
        Rl4oasdConfig, Rl4oasdDetector, ShardedEngine, StreamEngine, SwapModel, TrainedModel,
    };
    pub use rnet::{
        CityBuilder, CityConfig, RadialCityBuilder, RadialCityConfig, RoadNetwork, SegmentId,
    };
    pub use scenario::{
        standard_suite, Backpressure, Driver, EventTrace, Fault, FaultOutcome, FaultPlan,
        NetworkKind, Regime, RunOutcome, ScenarioRunner, ScenarioSpec, World, POISON_SEGMENT,
    };
    pub use serve::{
        run_load, Client, Frame, FrameError, FrameReader, LoadReport, LoadSpec, Server,
        ServerConfig, TenantSpec, WireError,
    };
    pub use traj::{
        silence_injected_panic_output, Dataset, DriftConfig, FlushPolicy, IngestConfig,
        IngestFrontDoor, IngestHandle, IngestStats, LatencyHistogram, MappedTrajectory,
        OnlineDetector, Priority, RetryPolicy, SdPair, SessionEngine, SessionFault, SessionId,
        SessionMux, Sharded, SingleSession, SubmitError, TrafficConfig, TrafficSimulator,
        FAULT_INJECTION_MARKER,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles() {
        use crate::prelude::*;
        let _ = Rl4oasdConfig::default();
        let _ = TrafficConfig::default();
        let _ = MatchConfig::default();
    }
}
