//! `oasd` — command-line front end for the RL4OASD reproduction.
//!
//! ```text
//! oasd simulate --seed 7 --pairs 20 --out corpus.json     generate a city + traffic corpus
//! oasd train    --corpus corpus.json --model model.json   label-free training
//! oasd detect   --corpus corpus.json --model model.json   label a corpus, print spans
//! oasd eval     --corpus corpus.json --model model.json   score against ground truth
//! ```
//!
//! Artifacts are JSON (the only serialisation format available offline);
//! corpora bundle the road network with the trajectories so every command
//! is self-contained.

use rl4oasd::{load_model, save_model, Rl4oasdConfig, Rl4oasdDetector};
use rnet::{CityBuilder, CityConfig, RoadNetwork};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::process::ExitCode;
use traj::{Dataset, OnlineDetector, TrafficConfig, TrafficSimulator};

#[derive(Serialize, Deserialize)]
struct Corpus {
    network: RoadNetwork,
    train: Dataset,
    test: Dataset,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = parse_flags(rest);
    let result = match cmd.as_str() {
        "simulate" => simulate(&opts),
        "train" => train(&opts),
        "detect" => detect(&opts),
        "eval" => eval_cmd(&opts),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  oasd simulate [--seed N] [--pairs N] [--trajs N] [--anomaly-ratio F] [--out corpus.json]
  oasd train    --corpus corpus.json [--model model.json] [--joint-trajs N]
  oasd detect   --corpus corpus.json --model model.json [--limit N]
  oasd eval     --corpus corpus.json --model model.json";

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            map.insert(key.to_string(), value);
            i += 2;
        } else {
            i += 1;
        }
    }
    map
}

fn flag<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    opts.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn simulate(opts: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = flag(opts, "seed", 7);
    let pairs: usize = flag(opts, "pairs", 20);
    let trajs: usize = flag(opts, "trajs", 120);
    let ratio: f64 = flag(opts, "anomaly-ratio", 0.05);
    let out = opts
        .get("out")
        .cloned()
        .unwrap_or_else(|| "corpus.json".to_string());

    eprintln!("building city (seed {seed})...");
    let mut city = CityConfig::chengdu_like();
    city.seed = seed;
    let network = CityBuilder::new(city).build();
    let sim = TrafficSimulator::new(
        &network,
        TrafficConfig {
            num_sd_pairs: pairs,
            trajs_per_pair: (trajs.saturating_sub(20).max(10), trajs + 20),
            anomaly_ratio: ratio,
            seed,
            ..Default::default()
        },
    );
    let generated = sim.generate();
    let train = Dataset::from_generated(&generated);
    let test =
        Dataset::from_generated(&sim.generate_from_pairs(&generated.pairs, (5, 8), 0.4, seed ^ 1));
    eprintln!(
        "simulated {} training and {} labelled test trajectories over {} pairs",
        train.len(),
        test.len(),
        pairs
    );
    let corpus = Corpus {
        network,
        train,
        test,
    };
    std::fs::write(
        &out,
        serde_json::to_string(&corpus).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    eprintln!("wrote {out}");
    Ok(())
}

fn load_corpus(opts: &HashMap<String, String>) -> Result<Corpus, String> {
    let path = opts
        .get("corpus")
        .ok_or("missing --corpus <file>".to_string())?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("{path}: {e}"))
}

fn train(opts: &HashMap<String, String>) -> Result<(), String> {
    let corpus = load_corpus(opts)?;
    let model_path = opts
        .get("model")
        .cloned()
        .unwrap_or_else(|| "model.json".to_string());
    let config = Rl4oasdConfig {
        joint_trajs: flag(opts, "joint-trajs", 2000),
        ..Default::default()
    };
    eprintln!("training on {} trajectories...", corpus.train.len());
    let started = std::time::Instant::now();
    let model = rl4oasd::train(&corpus.network, &corpus.train, &config);
    eprintln!("trained in {:.1} s", started.elapsed().as_secs_f64());
    save_model(&model, std::path::Path::new(&model_path)).map_err(|e| e.to_string())?;
    eprintln!("wrote {model_path}");
    Ok(())
}

fn detect(opts: &HashMap<String, String>) -> Result<(), String> {
    let corpus = load_corpus(opts)?;
    let model_path = opts.get("model").ok_or("missing --model <file>")?;
    let model = load_model(std::path::Path::new(model_path)).map_err(|e| e.to_string())?;
    let limit: usize = flag(opts, "limit", 20);
    let mut det = Rl4oasdDetector::new(&model, &corpus.network);
    for t in corpus.test.trajectories.iter().take(limit) {
        let labels = det.label_trajectory(t);
        let spans = traj::extract_subtrajectories(&labels);
        if spans.is_empty() {
            println!("trajectory {:>4}: NORMAL ({} segments)", t.id.0, t.len());
        } else {
            println!(
                "trajectory {:>4}: ANOMALOUS at {:?} ({} segments)",
                t.id.0,
                spans.iter().map(|s| (s.start, s.end)).collect::<Vec<_>>(),
                t.len()
            );
        }
    }
    Ok(())
}

fn eval_cmd(opts: &HashMap<String, String>) -> Result<(), String> {
    let corpus = load_corpus(opts)?;
    let model_path = opts.get("model").ok_or("missing --model <file>")?;
    let model = load_model(std::path::Path::new(model_path)).map_err(|e| e.to_string())?;
    let mut det = Rl4oasdDetector::new(&model, &corpus.network);
    let mut outputs = Vec::new();
    let mut truths = Vec::new();
    for t in &corpus.test.trajectories {
        let Some(gt) = corpus.test.truth(t.id) else {
            continue;
        };
        outputs.push(det.label_trajectory(t));
        truths.push(gt.to_vec());
    }
    if truths.is_empty() {
        return Err("corpus has no labelled test trajectories".to_string());
    }
    let m = eval::evaluate(&outputs, &truths);
    let c = eval::Confusion::of_corpus(&outputs, &truths);
    println!(
        "span-level   : F1 {:.3}  TF1 {:.3}  (P {:.3}, R {:.3})",
        m.f1, m.tf1, m.precision, m.recall
    );
    println!(
        "segment-level: F1 {:.3}  acc {:.3}  FPR {:.4}",
        c.f1(),
        c.accuracy(),
        c.false_positive_rate()
    );
    Ok(())
}
