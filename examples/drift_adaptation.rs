//! Drift adaptation with zero-downtime model hot-swap: the closed loop the
//! paper's online-learning story implies (§V-G), end to end on the async
//! serving stack.
//!
//! Route popularity swaps at noon (roadworks), so a model trained on the
//! morning false-positives in the afternoon. Instead of stopping the
//! stream to redeploy, this example keeps a live [`rl4oasd::IngestEngine`]
//! serving afternoon trips **while** an [`rl4oasd::OnlineLearner`]
//! fine-tunes on newly recorded trips in a background thread and publishes
//! the refreshed model into the running engine with
//! [`rl4oasd::SwapModel::swap_model`] — a control command through the
//! per-shard ingress queues, applied at each worker's next flush boundary.
//! Trips already in flight finish on the weights they started with (their
//! label streams stay self-consistent); trips opened after the swap run the
//! new weights; the old model is freed once its last trip closes.
//!
//! Run with: `cargo run --release --example drift_adaptation`

use rl4oasd::SwapModel;
use rl4oasd_repro::prelude::*;
use rnet::{CityBuilder, CityConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Streams one wave of trips through the live engine, returning `(outputs,
/// truths)` for evaluation. Every trip is a fresh session: waves started
/// after a swap run the newly published model.
fn serve_wave(
    handle: &IngestHandle<StreamEngine>,
    data: &Dataset,
    trips: &[MappedTrajectory],
) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let mut outputs = Vec::with_capacity(trips.len());
    let mut truths = Vec::with_capacity(trips.len());
    let opened: Vec<_> = trips
        .iter()
        .map(|t| {
            handle
                .open(t.sd_pair().expect("non-empty"), t.start_time)
                .expect("engine is live")
        })
        .collect();
    // Interleave one point per trip per round, like a fleet would.
    let max_len = trips.iter().map(|t| t.len()).max().unwrap_or(0);
    for tick in 0..max_len {
        for (k, t) in trips.iter().enumerate() {
            if tick < t.len() {
                handle
                    .submit_blocking(opened[k].0, t.segments[tick])
                    .expect("engine is live");
            }
        }
    }
    for ((session, _sub), t) in opened.into_iter().zip(trips) {
        outputs.push(
            handle
                .close(session)
                .expect("engine is live")
                .wait()
                .expect("session healthy"),
        );
        truths.push(data.truth(t.id).unwrap().to_vec());
    }
    (outputs, truths)
}

fn f1(outputs: &[Vec<u8>], truths: &[Vec<u8>]) -> f64 {
    evaluate(outputs, truths).f1
}

fn main() {
    let net = Arc::new(CityBuilder::new(CityConfig::chengdu_like()).build());
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 10,
            trajs_per_pair: (140, 180),
            drift: Some(DriftConfig {
                swap_time: 12.0 * 3600.0,
            }),
            ..Default::default()
        },
    );
    let all = Dataset::from_generated(&sim.generate());
    let morning = all.filter(|t| t.start_time < 12.0 * 3600.0);
    let afternoon = all.filter(|t| t.start_time >= 12.0 * 3600.0);
    println!(
        "{} morning trips, {} afternoon trips (routes swap at noon)",
        morning.len(),
        afternoon.len()
    );

    let cfg = Rl4oasdConfig {
        joint_trajs: 400,
        ..Default::default()
    };
    println!("training v1 on the morning only...");
    let v1 = Arc::new(rl4oasd::train(&net, &morning, &cfg));

    // The serving waves and the fine-tuning corpus are disjoint slices of
    // the afternoon: the learner trains on "recorded" trips, the waves
    // measure held-out ones.
    let holdout: Vec<MappedTrajectory> = afternoon
        .trajectories
        .iter()
        .filter(|t| !t.is_empty())
        .take(120)
        .cloned()
        .collect();
    let holdout_ids: std::collections::HashSet<_> = holdout.iter().map(|t| t.id).collect();
    let recorded = afternoon.filter(|t| !holdout_ids.contains(&t.id));
    let waves: Vec<&[MappedTrajectory]> = holdout.chunks(40).collect();

    let shards = std::thread::available_parallelism().map_or(1, |n| n.get());
    let engine = IngestEngine::new(
        Arc::clone(&v1),
        Arc::clone(&net),
        shards,
        IngestConfig::default(),
    );
    let handle = engine.handle();

    // Wave 0: the drifted regime served by the stale morning model.
    let (out0, truth0) = serve_wave(&handle, &afternoon, waves[0]);
    println!("wave 0 (v1, drifted):      F1 = {:.3}", f1(&out0, &truth0));

    // Background learner: fine-tune on recorded afternoon trips and
    // publish into the live engine — the stream never stops.
    let learner_handle = handle.clone();
    let learner_net = Arc::clone(&net);
    let learner_v1 = Arc::clone(&v1);
    let learner = std::thread::spawn(move || {
        let mut learner = rl4oasd::OnlineLearner::new(TrainedModel::clone(&learner_v1));
        let t0 = Instant::now();
        let secs = learner.fine_tune(&learner_net, &recorded);
        let snapshot = Arc::new(learner.model.clone());
        learner_handle
            .swap_model(snapshot)
            .expect("engine is live during publish");
        println!(
            "  [learner] fine-tuned {:.1}s, published v2 at t+{:.1}s (hot-swap, zero downtime)",
            secs,
            t0.elapsed().as_secs_f64()
        );
    });

    // Wave 1 streams *while* the learner trains: these trips may start on
    // v1 and keep v1 to completion even if the swap lands mid-wave —
    // per-session epochs guarantee self-consistent label streams.
    let (out1, truth1) = serve_wave(&handle, &afternoon, waves[1]);
    println!("wave 1 (during fine-tune): F1 = {:.3}", f1(&out1, &truth1));
    learner.join().expect("learner thread");

    // Wave 2 opens strictly after the swap: served by v2.
    std::thread::sleep(Duration::from_millis(10)); // let the flush boundary pass
    let (out2, truth2) = serve_wave(&handle, &afternoon, waves[2]);
    let (f0, f2) = (f1(&out0, &truth0), f1(&out2, &truth2));
    println!("wave 2 (v2, adapted):      F1 = {:.3}", f1(&out2, &truth2));

    let report = engine.shutdown();
    println!(
        "\nserved {} points across {} sessions on {} shards; {} per-shard swaps applied",
        report.engine.observe_events,
        report.engine.sessions_closed,
        report.shard_stats.len(),
        report.engine.model_swaps,
    );
    println!(
        "drift cost {:.3} F1; live hot-swap recovered {:+.3} without dropping a session",
        1.0 - f0,
        f2 - f0
    );
}
