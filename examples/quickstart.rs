//! Quickstart: build a synthetic city, train RL4OASD without labels, and
//! detect anomalous subtrajectories online.
//!
//! Run with: `cargo run --release --example quickstart`

use rl4oasd_repro::prelude::*;
use rnet::{CityBuilder, CityConfig};

fn main() {
    // 1. A synthetic city (~4.3k road segments) and a day of taxi traffic.
    println!("building city and simulating traffic...");
    let net = CityBuilder::new(CityConfig::chengdu_like()).build();
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 20,
            trajs_per_pair: (80, 140),
            anomaly_ratio: 0.05,
            ..Default::default()
        },
    );
    let generated = sim.generate();
    let train = Dataset::from_generated(&generated);
    println!(
        "  {} trajectories over {} SD pairs",
        train.len(),
        train.by_pair.len()
    );

    // 2. Train RL4OASD — no labels needed (noisy labels are derived from
    //    transition fractions, then refined by the RL loop).
    println!("training RL4OASD...");
    let config = Rl4oasdConfig {
        joint_trajs: 1000,
        ..Default::default()
    };
    let model = rl4oasd::train(&net, &train, &config);

    // 3. Detect. A detector is cheap to construct and reusable.
    let mut detector = Rl4oasdDetector::new(&model, &net);
    let test = Dataset::from_generated(&sim.generate_from_pairs(&generated.pairs, (3, 4), 0.5, 42));
    let mut shown = 0;
    for t in &test.trajectories {
        let labels = detector.label_trajectory(t);
        let spans = traj::extract_subtrajectories(&labels);
        if !spans.is_empty() && shown < 5 {
            println!(
                "trajectory {:?} ({} segments): anomalous subtrajectories {:?}",
                t.id,
                t.len(),
                spans.iter().map(|s| (s.start, s.end)).collect::<Vec<_>>()
            );
            shown += 1;
        }
    }

    // 4. How good is it? The simulator knows the ground truth.
    let outputs: Vec<Vec<u8>> = test
        .trajectories
        .iter()
        .map(|t| detector.label_trajectory(t))
        .collect();
    let truths: Vec<Vec<u8>> = test
        .trajectories
        .iter()
        .map(|t| test.truth(t.id).unwrap().to_vec())
        .collect();
    let m = evaluate(&outputs, &truths);
    println!(
        "test F1 = {:.3}, TF1 = {:.3} (precision {:.3}, recall {:.3})",
        m.f1, m.tf1, m.precision, m.recall
    );
}
