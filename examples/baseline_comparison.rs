//! Compares RL4OASD against the strongest similarity baseline (CTSS) and
//! the isolation heuristic (IBOAT) on one corpus, with dev-set threshold
//! tuning exactly as in the paper's evaluation protocol.
//!
//! Run with: `cargo run --release --example baseline_comparison`

use rl4oasd_repro::prelude::*;
use rnet::{CityBuilder, CityConfig};
use std::sync::Arc;

fn main() {
    let net = CityBuilder::new(CityConfig::chengdu_like()).build();
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 20,
            trajs_per_pair: (80, 140),
            ..Default::default()
        },
    );
    let generated = sim.generate();
    let train = Dataset::from_generated(&generated);
    let dev = Dataset::from_generated(&sim.generate_from_pairs(&generated.pairs, (3, 3), 0.35, 1));
    let test = Dataset::from_generated(&sim.generate_from_pairs(&generated.pairs, (6, 8), 0.4, 2));

    println!("training RL4OASD...");
    let model = rl4oasd::train(
        &net,
        &train,
        &Rl4oasdConfig {
            joint_trajs: 1000,
            ..Default::default()
        },
    );
    let stats = Arc::new(RouteStats::fit(&train));

    let truths = |data: &Dataset| -> Vec<Vec<u8>> {
        data.trajectories
            .iter()
            .map(|t| data.truth(t.id).unwrap().to_vec())
            .collect()
    };
    let dev_truths = truths(&dev);
    let test_truths = truths(&test);

    // Tune CTSS / IBOAT thresholds on the dev set (paper protocol).
    let report = |name: &str, outputs: Vec<Vec<u8>>| {
        let m = evaluate(&outputs, &test_truths);
        println!("{name:>8}: F1 = {:.3}  TF1 = {:.3}", m.f1, m.tf1);
    };

    for (name, mut scorer) in [
        (
            "CTSS",
            Box::new(Ctss::new(&net, Arc::clone(&stats))) as Box<dyn ScoringDetector>,
        ),
        (
            "IBOAT",
            Box::new(Iboat::new(Arc::clone(&stats), 0.05)) as Box<dyn ScoringDetector>,
        ),
    ] {
        let dev_scores: Vec<Vec<f64>> = dev
            .trajectories
            .iter()
            .map(|t| {
                scorer
                    .score_trajectory(t)
                    .into_iter()
                    .map(|s| s.min(1e6))
                    .collect()
            })
            .collect();
        let (thr, dev_f1) = eval::tune_threshold(&dev_scores, &dev_truths, 50);
        println!("{name}: tuned threshold {thr:.3} (dev F1 {dev_f1:.3})");
        let mut det = Thresholded::new(scorer, thr);
        let outputs: Vec<Vec<u8>> = test
            .trajectories
            .iter()
            .map(|t| det.label_trajectory(t))
            .collect();
        report(name, outputs);
    }

    let mut det = Rl4oasdDetector::new(&model, &net);
    let outputs: Vec<Vec<u8>> = test
        .trajectories
        .iter()
        .map(|t| det.label_trajectory(t))
        .collect();
    report("RL4OASD", outputs);
}
