//! Fleet monitoring: the paper's motivating scenario at fleet scale — a
//! ride-hailing operator watches *many* live trips at once and spots each
//! driver the moment their trajectory starts to deviate.
//!
//! Demonstrates the *async ingestion* path end-to-end: GPS points do not
//! arrive in neat ticks, they arrive one at a time from many gateway
//! connections. Here several **producer threads** each monitor a slice of
//! the fleet, submitting every point through a cloned
//! [`traj::IngestHandle`] into an [`rl4oasd::IngestEngine`] — one
//! `StreamEngine` shard per available core behind one shared trained
//! model, each shard owned by a persistent worker thread that
//! micro-batches arrivals into batched LSTM ticks under a
//! [`traj::FlushPolicy`] latency SLO (flush at 64 events or 2 ms,
//! whichever first). Labels stream back on per-session subscriptions: the
//! producer raises a deviation alert the moment the first anomalous label
//! arrives, while the trip is still in progress. Labels are bit-identical
//! to running each trip alone through `Rl4oasdDetector`, whatever the
//! shard count or flush policy.
//!
//! Run with: `cargo run --release --example fleet_monitoring`

use rl4oasd_repro::prelude::*;
use rnet::{CityBuilder, CityConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One producer thread: feeds its slice of the fleet point-by-point,
/// watching subscriptions for the first anomalous label of each trip.
/// Returns `(trip index, final labels)` for every trip it served.
fn produce(
    handle: IngestHandle<StreamEngine>,
    trips: Arc<Vec<MappedTrajectory>>,
    mine: Vec<usize>,
) -> Vec<(usize, Vec<u8>)> {
    struct Lane {
        trip: usize,
        session: traj::SessionId,
        sub: traj::Subscription,
        received: usize,
        alerted: bool,
    }

    // Open a session per owned trip.
    let mut lanes: Vec<Lane> = mine
        .iter()
        .map(|&k| {
            let t = &trips[k];
            let (session, sub) = handle
                .open(t.sd_pair().expect("non-empty"), t.start_time)
                .expect("fleet fits the front door");
            Lane {
                trip: k,
                session,
                sub,
                received: 0,
                alerted: false,
            }
        })
        .collect();

    let alert = |trip: &MappedTrajectory, tick: usize, label: u8, alerted: &mut bool| {
        if label == 1 && !*alerted {
            println!(
                "  !! tick {tick:>3}: deviation alert for trip {:?} (live)",
                trip.id
            );
            *alerted = true;
        }
    };

    // Submit one point per trip per round (the simulated GPS cadence),
    // draining labels as they stream back.
    let max_len = mine.iter().map(|&k| trips[k].len()).max().unwrap_or(0);
    for tick in 0..max_len {
        for lane in lanes.iter_mut() {
            let t = &trips[lane.trip];
            if tick < t.len() {
                // Backpressure: wait politely instead of shedding points.
                while handle.submit(lane.session, t.segments[tick]) == Err(SubmitError::QueueFull) {
                    std::thread::yield_now();
                }
            }
            while let Some(label) = lane.sub.try_recv() {
                lane.received += 1;
                alert(t, tick, label, &mut lane.alerted);
            }
        }
    }

    // Every point is submitted, but the last micro-batches may still be in
    // flight: wait out the remaining labels (the flush SLO bounds the wait)
    // so no live alert is lost, then close.
    lanes
        .into_iter()
        .map(|mut lane| {
            let t = &trips[lane.trip];
            while lane.received < t.len() {
                match lane.sub.recv() {
                    Some(label) => {
                        lane.received += 1;
                        alert(t, t.len() - 1, label, &mut lane.alerted);
                    }
                    None => break,
                }
            }
            let labels = handle
                .close(lane.session)
                .expect("close accepted")
                .wait()
                .expect("session healthy");
            (lane.trip, labels)
        })
        .collect()
}

fn main() {
    let net = CityBuilder::new(CityConfig::chengdu_like()).build();
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 15,
            trajs_per_pair: (80, 120),
            ..Default::default()
        },
    );
    let generated = sim.generate();
    let train = Dataset::from_generated(&generated);
    println!("training on {} historical trips...", train.len());
    let model = rl4oasd::train(
        &net,
        &train,
        &Rl4oasdConfig {
            joint_trajs: 800,
            ..Default::default()
        },
    );

    // The fleet: a batch of live trips sharing the route families, with
    // detours forced so the demo has something to alert on.
    let live = Dataset::from_generated(&sim.generate_from_pairs(&generated.pairs, (2, 3), 0.5, 7));
    let trips: Arc<Vec<MappedTrajectory>> = Arc::new(
        live.trajectories
            .iter()
            .filter(|t| !t.is_empty())
            .cloned()
            .collect(),
    );

    // The async front door: one StreamEngine shard per core behind one
    // shared immutable model, persistent workers, 64-event / 2 ms flushes.
    let shards = std::thread::available_parallelism().map_or(1, |n| n.get());
    let engine = rl4oasd::IngestEngine::new(
        Arc::new(model),
        Arc::new(net),
        shards,
        IngestConfig {
            flush: FlushPolicy::new(64, Duration::from_millis(2)),
            ..Default::default()
        },
    );
    let producers = 4usize.min(trips.len().max(1));
    println!(
        "\nmonitoring {} concurrent trips: {} producer threads -> {} shard worker(s)\n",
        trips.len(),
        producers,
        engine.num_shards()
    );

    // Producer threads: each owns an interleaved slice of the fleet.
    let t0 = Instant::now();
    let joins: Vec<_> = (0..producers)
        .map(|p| {
            let handle = engine.handle();
            let trips = Arc::clone(&trips);
            let mine: Vec<usize> = (p..trips.len()).step_by(producers).collect();
            std::thread::spawn(move || produce(handle, trips, mine))
        })
        .collect();
    let mut final_labels: Vec<(usize, Vec<u8>)> = joins
        .into_iter()
        .flat_map(|j| j.join().expect("producer thread"))
        .collect();
    final_labels.sort_by_key(|&(k, _)| k);
    let serve_seconds = t0.elapsed().as_secs_f64();
    let report = engine.shutdown();

    // Compare the flagged spans with ground truth.
    let mut hits = 0usize;
    let mut flagged = 0usize;
    for (k, labels) in &final_labels {
        let spans = traj::extract_subtrajectories(labels);
        let truth_spans = traj::extract_subtrajectories(live.truth(trips[*k].id).unwrap());
        if !spans.is_empty() {
            flagged += 1;
        }
        if !truth_spans.is_empty() && !spans.is_empty() {
            hits += 1;
        }
    }
    let total_points = report.ingest.submitted;
    println!(
        "\n  {} of {} trips flagged ({} with a true detour detected)",
        flagged,
        trips.len(),
        hits
    );
    println!(
        "  served {total_points} points in {:.3}s = {:.0} points/sec",
        serve_seconds,
        total_points as f64 / serve_seconds.max(1e-12)
    );
    println!(
        "  micro-batches: {} flushes, largest {} events; batched nn events: {}, scalar: {}",
        report.ingest.flushes,
        report.ingest.max_flush_batch,
        report.engine.batched_events,
        report.engine.scalar_events
    );
    let lat = &report.ingest.latency;
    println!(
        "  submit->label latency: p50 {:.0} us, p99 {:.0} us, max {:.1} ms (paper: < 0.1 ms compute/point)",
        lat.percentile(0.50).as_secs_f64() * 1e6,
        lat.percentile(0.99).as_secs_f64() * 1e6,
        lat.max().as_secs_f64() * 1e3
    );
}
