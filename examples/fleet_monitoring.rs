//! Fleet monitoring: the paper's motivating scenario at fleet scale — a
//! ride-hailing operator watches *many* live trips at once and spots each
//! driver the moment their trajectory starts to deviate.
//!
//! Demonstrates the *session* API at multi-core scale: one shared trained
//! model serves every ongoing trip through a [`rl4oasd::ShardedEngine`] —
//! one `StreamEngine` shard per available core, sessions hashed to shards,
//! zero weight duplication. Each simulation tick feeds the next
//! GPS-matched segment of every live trip as a single `observe_batch`
//! call; the tick is partitioned by shard and the shards advance
//! concurrently on scoped worker threads, each through its own batched
//! LSTM pass. Labels are bit-identical to running each trip alone through
//! `Rl4oasdDetector`, whatever the shard count.
//!
//! Run with: `cargo run --release --example fleet_monitoring`

use rl4oasd_repro::prelude::*;
use rnet::{CityBuilder, CityConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let net = CityBuilder::new(CityConfig::chengdu_like()).build();
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 15,
            trajs_per_pair: (80, 120),
            ..Default::default()
        },
    );
    let generated = sim.generate();
    let train = Dataset::from_generated(&generated);
    println!("training on {} historical trips...", train.len());
    let model = rl4oasd::train(
        &net,
        &train,
        &Rl4oasdConfig {
            joint_trajs: 800,
            ..Default::default()
        },
    );

    // The fleet: a batch of live trips sharing the route families, with
    // detours forced so the demo has something to alert on.
    let live = Dataset::from_generated(&sim.generate_from_pairs(&generated.pairs, (2, 3), 0.5, 7));
    let trips: Vec<_> = live.trajectories.iter().filter(|t| !t.is_empty()).collect();

    // One sharded engine — a StreamEngine per core behind one shared
    // immutable model — and one session per live trip.
    let shards = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut engine = rl4oasd::ShardedEngine::new(Arc::new(model), Arc::new(net), shards);
    let handles: Vec<_> = trips
        .iter()
        .map(|t| engine.open(t.sd_pair().unwrap(), t.start_time))
        .collect();
    println!(
        "\nmonitoring {} concurrent trips through {} StreamEngine shard(s)\n",
        engine.active_sessions(),
        engine.num_shards()
    );

    // Tick-synchronous serving: every live trip advances one segment per
    // tick; the engine batches the whole tick through the model.
    let mut alerted = vec![false; trips.len()];
    let mut events = Vec::new();
    let mut out = Vec::new();
    let mut total_points = 0u64;
    let max_len = trips.iter().map(|t| t.len()).max().unwrap_or(0);
    let t0 = Instant::now();
    for tick in 0..max_len {
        events.clear();
        let mut tick_trips = Vec::new();
        for (k, t) in trips.iter().enumerate() {
            if tick < t.len() {
                events.push((handles[k], t.segments[tick]));
                tick_trips.push(k);
            }
        }
        engine.observe_batch(&events, &mut out);
        total_points += events.len() as u64;
        for (i, (label, &k)) in out.iter().zip(&tick_trips).enumerate() {
            if *label == 1 && !alerted[k] {
                println!(
                    "  !! tick {tick:>3}: deviation alert for trip {:?} (segment {})",
                    trips[k].id, events[i].1
                );
                alerted[k] = true;
            }
        }
    }
    let serve_seconds = t0.elapsed().as_secs_f64();

    // Close every session and compare the flagged spans with ground truth.
    let mut hits = 0usize;
    let mut flagged = 0usize;
    for (k, t) in trips.iter().enumerate() {
        let labels = engine.close(handles[k]);
        let spans = traj::extract_subtrajectories(&labels);
        let truth_spans = traj::extract_subtrajectories(live.truth(t.id).unwrap());
        if !spans.is_empty() {
            flagged += 1;
        }
        if !truth_spans.is_empty() && !spans.is_empty() {
            hits += 1;
        }
    }
    let stats = engine.stats();
    println!(
        "\n  {} of {} trips flagged ({} with a true detour detected)",
        flagged,
        trips.len(),
        hits
    );
    println!(
        "  served {total_points} points in {:.3}s = {:.0} points/sec",
        serve_seconds,
        total_points as f64 / serve_seconds.max(1e-12)
    );
    println!(
        "  batched nn events: {} ({} rounds); scalar events: {}",
        stats.batched_events, stats.batched_rounds, stats.scalar_events
    );
    println!(
        "  mean latency per point: {:.1} us (paper: < 0.1 ms)",
        serve_seconds * 1e6 / total_points.max(1) as f64
    );
}
