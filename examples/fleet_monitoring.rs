//! Fleet monitoring: the paper's motivating scenario — a ride-hailing
//! operator spots a driver the moment the trajectory starts to deviate.
//!
//! Demonstrates the *streaming* API: segments are observed one at a time
//! and the detector labels each on arrival (under 0.1 ms per point).
//!
//! Run with: `cargo run --release --example fleet_monitoring`

use rl4oasd_repro::prelude::*;
use rnet::{CityBuilder, CityConfig};
use std::time::Instant;

fn main() {
    let net = CityBuilder::new(CityConfig::chengdu_like()).build();
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 15,
            trajs_per_pair: (80, 120),
            ..Default::default()
        },
    );
    let generated = sim.generate();
    let train = Dataset::from_generated(&generated);
    println!("training on {} historical trips...", train.len());
    let model = rl4oasd::train(
        &net,
        &train,
        &Rl4oasdConfig {
            joint_trajs: 800,
            ..Default::default()
        },
    );
    let mut detector = Rl4oasdDetector::new(&model, &net);

    // A live trip: the driver takes a detour somewhere in the middle.
    let live = Dataset::from_generated(&sim.generate_from_pairs(
        &generated.pairs,
        (1, 1),
        1.0, // force a detour for the demo
        7,
    ));
    let trip = &live.trajectories[0];
    let sd = trip.sd_pair().unwrap();
    println!(
        "\nmonitoring trip {:?}: {} -> {} ({} segments)",
        trip.id, sd.source, sd.dest, trip.len()
    );

    detector.begin(sd, trip.start_time);
    let mut alerted = false;
    let mut total = std::time::Duration::ZERO;
    for (i, &seg) in trip.segments.iter().enumerate() {
        let t0 = Instant::now();
        let label = detector.observe(seg);
        total += t0.elapsed();
        if label == 1 && !alerted {
            println!("  !! deviation alert at position {i} (segment {seg})");
            alerted = true;
        }
    }
    let final_labels = detector.finish();
    let spans = traj::extract_subtrajectories(&final_labels);
    println!(
        "  final anomalous subtrajectories: {:?}",
        spans.iter().map(|s| (s.start, s.end)).collect::<Vec<_>>()
    );
    println!(
        "  ground truth:                    {:?}",
        traj::extract_subtrajectories(live.truth(trip.id).unwrap())
            .iter()
            .map(|s| (s.start, s.end))
            .collect::<Vec<_>>()
    );
    println!(
        "  mean latency per point: {:.1} us (paper: < 0.1 ms)",
        total.as_secs_f64() * 1e6 / trip.len() as f64
    );
    if !alerted {
        println!("  trip completed with no deviation alert");
    }
}
