//! Concept drift: what is "normal" changes over the day (paper §V-G).
//!
//! Route popularity swaps at noon (e.g. roadworks make the usual route
//! slow). A model trained on the morning (P1) starts to false-positive in
//! the afternoon; fine-tuning on newly recorded trips (FT) recovers.
//!
//! Run with: `cargo run --release --example concept_drift`

use rl4oasd_repro::prelude::*;
use rnet::{CityBuilder, CityConfig};

fn main() {
    let net = CityBuilder::new(CityConfig::chengdu_like()).build();
    let sim = TrafficSimulator::new(
        &net,
        TrafficConfig {
            num_sd_pairs: 12,
            trajs_per_pair: (160, 220),
            drift: Some(DriftConfig {
                swap_time: 12.0 * 3600.0,
            }),
            ..Default::default()
        },
    );
    let generated = sim.generate();
    let all = Dataset::from_generated(&generated);
    let morning = all.filter(|t| t.start_time < 12.0 * 3600.0);
    let afternoon = all.filter(|t| t.start_time >= 12.0 * 3600.0);
    println!(
        "{} morning trips, {} afternoon trips (routes swap at noon)",
        morning.len(),
        afternoon.len()
    );

    let cfg = Rl4oasdConfig {
        joint_trajs: 800,
        ..Default::default()
    };
    println!("training P1 on the morning only...");
    let p1 = rl4oasd::train(&net, &morning, &cfg);

    let eval_on = |model: &TrainedModel, data: &Dataset, name: &str| {
        let mut det = Rl4oasdDetector::new(model, &net);
        let outputs: Vec<Vec<u8>> = data
            .trajectories
            .iter()
            .map(|t| det.label_trajectory(t))
            .collect();
        let truths: Vec<Vec<u8>> = data
            .trajectories
            .iter()
            .map(|t| data.truth(t.id).unwrap().to_vec())
            .collect();
        let m = evaluate(&outputs, &truths);
        println!("  {name}: F1 = {:.3}", m.f1);
        m.f1
    };

    println!("P1 performance:");
    eval_on(&p1, &morning, "morning (in-distribution)  ");
    let p1_pm = eval_on(&p1, &afternoon, "afternoon (concept drifted) ");

    println!("fine-tuning on afternoon trips (online learning)...");
    let mut learner = rl4oasd::OnlineLearner::new(p1);
    let secs = learner.fine_tune(&net, &afternoon);
    println!("  fine-tuned in {secs:.1} s");
    let ft_pm = eval_on(&learner.model, &afternoon, "afternoon after fine-tuning ");
    println!(
        "\ndrift cost {:.3} F1; online learning recovered {:+.3}",
        1.0 - p1_pm,
        ft_pm - p1_pm
    );
}
